"""Point-to-point links between BGP speakers.

A link carries messages with a fixed propagation delay and can be failed and
restored at runtime; messages in flight on a failing link are lost, as they
would be on a real circuit.  Delivery order on a link is FIFO by
construction (same delay, deterministic event ordering).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Tuple

from repro.eventsim.event import EventHandle
from repro.eventsim.simulator import RearmPlan, Simulator


class LinkState(enum.Enum):
    UP = "up"
    DOWN = "down"


class Link:
    """A bidirectional link between two endpoints.

    Endpoints are opaque hashable identifiers (the simulator uses ASNs).
    The owner wires delivery by registering one receive callback per side.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Any,
        b: Any,
        delay: float = 0.01,
    ) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        if delay <= 0:
            raise ValueError(f"link delay must be positive, got {delay!r}")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay = float(delay)
        self.state = LinkState.UP
        self._receivers: dict = {}
        self._epoch = 0  # bumped on failure; in-flight messages check it
        self.messages_sent = 0
        self.messages_dropped = 0
        # Messages queued but not yet delivered, keyed by a per-link token.
        # Tracking them is what makes link state snapshottable: a restore
        # re-schedules exactly these deliveries at their original times.
        self._in_flight: Dict[int, Tuple[Any, Any, int, EventHandle]] = {}
        self._flight_seq = 0
        # Delivery labels are per-direction constants; formatting them per
        # message showed up in profiles of large convergence runs.
        self._labels = {a: f"deliver {a}->{b}", b: f"deliver {b}->{a}"}

    @property
    def endpoints(self) -> Tuple[Any, Any]:
        return (self.a, self.b)

    def other_end(self, endpoint: Any) -> Any:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")

    def attach(self, endpoint: Any, receiver: Callable[[Any, Any], None]) -> None:
        """Register ``receiver(sender, message)`` for messages arriving at
        ``endpoint``."""
        if endpoint not in (self.a, self.b):
            raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")
        self._receivers[endpoint] = receiver

    def send(self, sender: Any, message: Any) -> bool:
        """Queue ``message`` from ``sender`` toward the other end.

        Returns ``False`` (and counts a drop) if the link is down.
        """
        destination = self.other_end(sender)
        if self.state is LinkState.DOWN:
            self.messages_dropped += 1
            return False
        epoch = self._epoch
        self.messages_sent += 1
        self._schedule_delivery(sender, message, epoch, self.sim.now + self.delay)
        return True

    def _schedule_delivery(
        self, sender: Any, message: Any, epoch: int, time: float
    ) -> None:
        token = self._flight_seq
        self._flight_seq += 1
        handle = self.sim.schedule_at(
            time,
            lambda: self._deliver(sender, message, epoch, token),
            label=self._labels[sender],
        )
        self._in_flight[token] = (sender, message, epoch, handle)

    def _deliver(self, sender: Any, message: Any, epoch: int, token: int) -> None:
        self._in_flight.pop(token, None)
        # A failure between send and delivery loses the message.
        if self.state is LinkState.DOWN or self._epoch != epoch:
            self.messages_dropped += 1
            return
        destination = self.other_end(sender)
        receiver = self._receivers.get(destination)
        if receiver is None:
            raise RuntimeError(
                f"no receiver attached at {destination!r} on {self!r}"
            )
        receiver(sender, message)

    def fail(self) -> None:
        """Take the link down, losing messages in flight."""
        self.state = LinkState.DOWN
        self._epoch += 1

    def restore(self) -> None:
        self.state = LinkState.UP

    # -- snapshot / restore ------------------------------------------------

    def pending_events(self) -> int:
        """Live scheduled deliveries (the link's share of the event queue)."""
        return sum(
            1 for (_, _, _, handle) in self._in_flight.values() if not handle.cancelled
        )

    def snapshot_state(self) -> Dict[str, Any]:
        in_flight: List[Dict[str, Any]] = []
        for token in sorted(self._in_flight):
            sender, message, epoch, handle = self._in_flight[token]
            if handle.cancelled:
                continue
            in_flight.append(
                {
                    "sender": sender,
                    "message": message,
                    "epoch": epoch,
                    "time": handle.time,
                    "sort_key": handle.sort_key,
                }
            )
        return {
            "state": self.state.value,
            "epoch": self._epoch,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "in_flight": in_flight,
        }

    def restore_state(self, state: Dict[str, Any], rearm: RearmPlan) -> None:
        self.state = LinkState(state["state"])
        self._epoch = int(state["epoch"])
        self.messages_sent = int(state["messages_sent"])
        self.messages_dropped = int(state["messages_dropped"])
        self._in_flight.clear()
        for flight in state["in_flight"]:
            rearm.add(
                flight["sort_key"],
                lambda f=flight: self._schedule_delivery(
                    f["sender"], f["message"], f["epoch"], f["time"]
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a!r}<->{self.b!r}, {self.state.value})"
