"""Point-to-point links between BGP speakers.

A link carries messages with a fixed propagation delay and can be failed and
restored at runtime; messages in flight on a failing link are lost, as they
would be on a real circuit.  Delivery order on a link is FIFO by
construction (same delay, deterministic event ordering).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Tuple

from repro.eventsim.simulator import Simulator


class LinkState(enum.Enum):
    UP = "up"
    DOWN = "down"


class Link:
    """A bidirectional link between two endpoints.

    Endpoints are opaque hashable identifiers (the simulator uses ASNs).
    The owner wires delivery by registering one receive callback per side.
    """

    def __init__(
        self,
        sim: Simulator,
        a: Any,
        b: Any,
        delay: float = 0.01,
    ) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        if delay <= 0:
            raise ValueError(f"link delay must be positive, got {delay!r}")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay = float(delay)
        self.state = LinkState.UP
        self._receivers: dict = {}
        self._epoch = 0  # bumped on failure; in-flight messages check it
        self.messages_sent = 0
        self.messages_dropped = 0
        # Delivery labels are per-direction constants; formatting them per
        # message showed up in profiles of large convergence runs.
        self._labels = {a: f"deliver {a}->{b}", b: f"deliver {b}->{a}"}

    @property
    def endpoints(self) -> Tuple[Any, Any]:
        return (self.a, self.b)

    def other_end(self, endpoint: Any) -> Any:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")

    def attach(self, endpoint: Any, receiver: Callable[[Any, Any], None]) -> None:
        """Register ``receiver(sender, message)`` for messages arriving at
        ``endpoint``."""
        if endpoint not in (self.a, self.b):
            raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")
        self._receivers[endpoint] = receiver

    def send(self, sender: Any, message: Any) -> bool:
        """Queue ``message`` from ``sender`` toward the other end.

        Returns ``False`` (and counts a drop) if the link is down.
        """
        destination = self.other_end(sender)
        if self.state is LinkState.DOWN:
            self.messages_dropped += 1
            return False
        epoch = self._epoch
        self.messages_sent += 1

        def deliver() -> None:
            # A failure between send and delivery loses the message.
            if self.state is LinkState.DOWN or self._epoch != epoch:
                self.messages_dropped += 1
                return
            receiver = self._receivers.get(destination)
            if receiver is None:
                raise RuntimeError(
                    f"no receiver attached at {destination!r} on {self!r}"
                )
            receiver(sender, message)

        self.sim.schedule_after(self.delay, deliver, label=self._labels[sender])
        return True

    def fail(self) -> None:
        """Take the link down, losing messages in flight."""
        self.state = LinkState.DOWN
        self._epoch += 1

    def restore(self) -> None:
        self.state = LinkState.UP

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a!r}<->{self.b!r}, {self.state.value})"
