"""Point-to-point links between BGP speakers.

A link carries messages with a fixed propagation delay and can be failed and
restored at runtime; messages in flight on a failing link are lost, as they
would be on a real circuit.  Delivery order on a link is FIFO by
construction (same delay, deterministic event ordering).

Deliveries are **batched**: consecutive sends in the same direction that
share a delivery tick coalesce into one queue event carrying the message
list.  Coalescing is only allowed while the batch's event is still the most
recently scheduled event in the whole simulator (checked against the event
queue's ``last_seq``): then no other event can sort between the batch
members, so firing them back-to-back is provably the same total order the
unbatched engine produced — and the batch credits its extra messages
through :meth:`Simulator.account_extra_events`, keeping every derived
counter bit-identical.
"""

from __future__ import annotations

import enum
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.eventsim.event import EventHandle
from repro.eventsim.simulator import RearmPlan, Simulator


class LinkState(enum.Enum):
    UP = "up"
    DOWN = "down"


class _Flight:
    """One scheduled delivery: a batch of messages on the wire.

    ``seq`` mirrors the underlying event's queue sequence number — the
    coalescing check compares it against the queue's most recent sequence
    to prove nothing was scheduled after the batch.
    """

    __slots__ = ("sender", "messages", "epoch", "time", "handle", "seq")

    def __init__(
        self,
        sender: Any,
        messages: List[Any],
        epoch: int,
        time: float,
        handle: EventHandle,
        seq: int,
    ) -> None:
        self.sender = sender
        self.messages = messages
        self.epoch = epoch
        self.time = time
        self.handle = handle
        self.seq = seq


class Link:
    """A bidirectional link between two endpoints.

    Endpoints are opaque hashable identifiers (the simulator uses ASNs).
    The owner wires delivery by registering one receive callback per side.
    """

    # Topology identity (sim/a/b/delay), receiver wiring and formatting
    # memos are rebuilt when the identical network is constructed; flight
    # tokens and the open-batch map are allocation bookkeeping that the
    # restore path regenerates deterministically while re-arming.
    _SNAPSHOT_WAIVED = frozenset(
        {"sim", "a", "b", "delay", "_receivers", "_flight_seq", "_open", "_labels"}
    )

    def __init__(
        self,
        sim: Simulator,
        a: Any,
        b: Any,
        delay: float = 0.01,
    ) -> None:
        if a == b:
            raise ValueError(f"link endpoints must differ, got {a!r} twice")
        if delay <= 0:
            raise ValueError(f"link delay must be positive, got {delay!r}")
        self.sim = sim
        self.a = a
        self.b = b
        self.delay = float(delay)
        self.state = LinkState.UP
        self._receivers: dict = {}
        self._epoch = 0  # bumped on failure; in-flight messages check it
        self.messages_sent = 0
        self.messages_dropped = 0
        # Delivery batches not yet fired, keyed by a per-link token.
        # Tracking them is what makes link state snapshottable: a restore
        # re-schedules exactly these deliveries at their original times.
        self._in_flight: Dict[int, _Flight] = {}
        self._flight_seq = 0
        # Per-direction token of the batch still open for coalescing.
        self._open: Dict[Any, int] = {}
        # Delivery labels are per-direction constants; formatting them per
        # message showed up in profiles of large convergence runs.
        self._labels = {a: f"deliver {a}->{b}", b: f"deliver {b}->{a}"}

    @property
    def endpoints(self) -> Tuple[Any, Any]:
        return (self.a, self.b)

    def other_end(self, endpoint: Any) -> Any:
        if endpoint == self.a:
            return self.b
        if endpoint == self.b:
            return self.a
        raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")

    def attach(self, endpoint: Any, receiver: Callable[[Any, Any], None]) -> None:
        """Register ``receiver(sender, message)`` for messages arriving at
        ``endpoint``."""
        if endpoint not in (self.a, self.b):
            raise ValueError(f"{endpoint!r} is not an endpoint of {self!r}")
        self._receivers[endpoint] = receiver

    def send(self, sender: Any, message: Any) -> bool:
        """Queue ``message`` from ``sender`` toward the other end.

        Returns ``False`` (and counts a drop) if the link is down.
        """
        if sender != self.a and sender != self.b:
            raise ValueError(f"{sender!r} is not an endpoint of {self!r}")
        if self.state is LinkState.DOWN:
            self.messages_dropped += 1
            return False
        self.messages_sent += 1
        self._send_at(sender, message, self._epoch, self.sim.now + self.delay)
        return True

    def _send_at(self, sender: Any, message: Any, epoch: int, time: float) -> None:
        """Coalesce into the open batch when order-safe, else schedule anew.

        Safe means: same direction, same delivery tick, same link epoch,
        batch event still live, and — the crucial guard — the batch event
        is still the newest event in the simulator's queue, so no event can
        possibly sort between its members.
        """
        token = self._open.get(sender)
        if token is not None:
            flight = self._in_flight.get(token)
            if (
                flight is not None
                and flight.time == time
                and flight.epoch == epoch
                and flight.seq == self.sim.queue.last_seq
                and not flight.handle.cancelled
            ):
                flight.messages.append(message)
                return
        token = self._flight_seq
        self._flight_seq += 1
        # partial() dispatches at C level — this fires once per delivery.
        handle = self.sim.schedule_at(
            time,
            partial(self._deliver, token),
            label=self._labels[sender],
        )
        self._in_flight[token] = _Flight(
            sender, [message], epoch, time, handle, handle.sort_key[2]
        )
        self._open[sender] = token

    def _deliver(self, token: int) -> None:
        flight = self._in_flight.pop(token, None)
        if flight is None:  # pragma: no cover - defensive; cancel clears it
            return
        sender = flight.sender
        if self._open.get(sender) == token:
            del self._open[sender]
        messages = flight.messages
        extra = len(messages) - 1
        if extra:
            # Each coalesced message was one event in the unbatched engine.
            self.sim.account_extra_events(extra)
        # A failure between send and delivery loses the whole batch (every
        # member was sent in the same pre-failure epoch).
        if self.state is LinkState.DOWN or self._epoch != flight.epoch:
            self.messages_dropped += len(messages)
            return
        destination = self.other_end(sender)
        receiver = self._receivers.get(destination)
        if receiver is None:
            raise RuntimeError(
                f"no receiver attached at {destination!r} on {self!r}"
            )
        for message in messages:
            receiver(sender, message)

    def fail(self) -> None:
        """Take the link down, losing messages in flight."""
        self.state = LinkState.DOWN
        self._epoch += 1

    def restore(self) -> None:
        self.state = LinkState.UP

    # -- snapshot / restore ------------------------------------------------

    def pending_events(self) -> int:
        """Live scheduled deliveries (the link's share of the event queue).

        Counts *queue events* (batches), not messages — this is what the
        snapshot protocol reconciles against ``len(sim.queue)``.
        """
        return sum(
            1 for flight in self._in_flight.values() if not flight.handle.cancelled
        )

    def snapshot_state(self) -> Dict[str, Any]:
        in_flight: List[Dict[str, Any]] = []
        for token in sorted(self._in_flight):
            flight = self._in_flight[token]
            if flight.handle.cancelled:
                continue
            base_key = flight.handle.sort_key
            for index, message in enumerate(flight.messages):
                # Extend the event's key with the batch index: keys stay
                # unique and globally ordered (no other event shares the
                # batch's (time, priority, seq) triple), so a RearmPlan
                # re-arms members consecutively and in order — and the
                # rearm path re-coalesces them by the same last-seq rule.
                in_flight.append(
                    {
                        "sender": flight.sender,
                        "message": message,
                        "epoch": flight.epoch,
                        "time": flight.time,
                        "sort_key": base_key + (index,),
                    }
                )
        return {
            "state": self.state.value,
            "epoch": self._epoch,
            "messages_sent": self.messages_sent,
            "messages_dropped": self.messages_dropped,
            "in_flight": in_flight,
        }

    def restore_state(self, state: Dict[str, Any], rearm: RearmPlan) -> None:
        self.state = LinkState(state["state"])
        self._epoch = int(state["epoch"])
        self.messages_sent = int(state["messages_sent"])
        self.messages_dropped = int(state["messages_dropped"])
        self._in_flight.clear()
        self._open.clear()
        for flight in state["in_flight"]:
            rearm.add(
                flight["sort_key"],
                lambda f=flight: self._send_at(
                    f["sender"], f["message"], f["epoch"], f["time"]
                ),
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.a!r}<->{self.b!r}, {self.state.value})"
