"""IPv4 address prefixes.

A :class:`Prefix` is an immutable ``network/len`` pair with the host bits
forced to zero, comparable, hashable, and equipped with the containment and
adjacency algebra that route de-aggregation faults and longest-match logic
need.  The standard library's :mod:`ipaddress` is deliberately not used: the
simulator needs exact control over normalisation and error behaviour, and
prefixes appear on very hot paths (every routing-table key is one).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, List, Optional, Sequence, Tuple

_MAX_IPV4 = (1 << 32) - 1


class PrefixError(ValueError):
    """Raised for malformed prefix strings or out-of-range components."""


def _parse_dotted_quad(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise PrefixError(f"expected dotted quad, got {text!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise PrefixError(f"non-numeric octet in {text!r}")
        octet = int(part)
        if octet > 255:
            raise PrefixError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


@lru_cache(maxsize=65536)
def _format_dotted_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


class Prefix:
    """An IPv4 prefix such as ``10.2.0.0/16``.

    Instances are canonical: host bits below the mask are cleared at
    construction, so two prefixes covering the same address block always
    compare equal and hash identically.
    """

    __slots__ = ("network", "length", "_hash", "_str")

    def __init__(self, network: int, length: int) -> None:
        if not 0 <= length <= 32:
            raise PrefixError(f"prefix length out of range: {length}")
        if not 0 <= network <= _MAX_IPV4:
            raise PrefixError(f"network address out of range: {network}")
        mask = self._mask_for(length)
        object.__setattr__(self, "network", network & mask)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "_hash", hash((network & mask, length)))
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Prefix is immutable")

    @staticmethod
    def _mask_for(length: int) -> int:
        return ((1 << length) - 1) << (32 - length) if length else 0

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``a.b.c.d/len`` (a bare address is treated as /32).

        Parses are memoized: routing-table keys are parsed from the same
        handful of strings over and over (dump ingestion, trace replay), and
        :class:`Prefix` is immutable, so returning the cached instance is
        observationally identical to re-parsing.
        """
        return _parse_prefix_cached(text.strip())

    # -- algebra -----------------------------------------------------------

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Natural ordering key: network address, then shorter-first.

        Identical to the order ``__lt__`` induces; exposed for callers that
        sort mixed containers keyed by prefix.
        """
        return (self.network, self.length)

    @property
    def mask(self) -> int:
        return self._mask_for(self.length)

    @property
    def first_address(self) -> int:
        return self.network

    @property
    def last_address(self) -> int:
        return self.network | (~self.mask & _MAX_IPV4)

    @property
    def size(self) -> int:
        """Number of addresses covered."""
        return 1 << (32 - self.length)

    def contains_address(self, address: int) -> bool:
        if not 0 <= address <= _MAX_IPV4:
            raise PrefixError(f"address out of range: {address}")
        return (address & self.mask) == self.network

    def contains(self, other: "Prefix") -> bool:
        """True if ``other`` is equal to or more specific than this prefix."""
        if other.length < self.length:
            return False
        return (other.network & self.mask) == self.network

    def is_subprefix_of(self, other: "Prefix") -> bool:
        """True if this prefix is *strictly* more specific than ``other``."""
        return other.length < self.length and other.contains(self)

    def overlaps(self, other: "Prefix") -> bool:
        return self.contains(other) or other.contains(self)

    def supernet(self) -> "Prefix":
        """The /``length-1`` prefix covering this one."""
        if self.length == 0:
            raise PrefixError("0.0.0.0/0 has no supernet")
        return Prefix(self.network, self.length - 1)

    def subnets(self) -> Tuple["Prefix", "Prefix"]:
        """Split into the two /``length+1`` halves."""
        if self.length == 32:
            raise PrefixError("/32 cannot be subdivided")
        child_len = self.length + 1
        low = Prefix(self.network, child_len)
        high = Prefix(self.network | (1 << (32 - child_len)), child_len)
        return low, high

    def deaggregate(self, target_length: int) -> Iterator["Prefix"]:
        """Yield the more-specific prefixes of ``target_length`` covering this
        prefix — the operation at the heart of the AS 7007-style
        de-aggregation fault the paper cites."""
        if target_length < self.length:
            raise PrefixError(
                f"target length /{target_length} is shorter than /{self.length}"
            )
        if target_length > 32:
            raise PrefixError(f"target length out of range: {target_length}")
        step = 1 << (32 - target_length)
        for network in range(self.network, self.last_address + 1, step):
            yield Prefix(network, target_length)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self.network == other.network and self.length == other.length

    def __lt__(self, other: "Prefix") -> bool:
        # Order by network address, then shorter (less specific) first.
        return (self.network, self.length) < (other.network, other.length)

    def __le__(self, other: "Prefix") -> bool:
        return self == other or self < other

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        # Memoized: prefixes are stringified on every trace record and
        # (historically) every sort; formatting once per instance matters.
        text = self._str
        if text is None:
            text = f"{_format_dotted_quad(self.network)}/{self.length}"
            object.__setattr__(self, "_str", text)
        return text

    def __repr__(self) -> str:
        return f"Prefix({str(self)!r})"

    def __reduce__(self) -> Tuple:
        # The immutability guard (__setattr__ raises) breaks the default
        # slot-state pickling path; reconstruct through __init__ instead.
        # Needed so scenario specs can cross process boundaries.
        return (Prefix, (self.network, self.length))


@lru_cache(maxsize=16384)
def _parse_prefix_cached(text: str) -> Prefix:
    if "/" in text:
        addr_text, _, len_text = text.partition("/")
        if not len_text.isdigit():
            raise PrefixError(f"bad prefix length in {text!r}")
        length = int(len_text)
    else:
        addr_text, length = text, 32
    return Prefix(_parse_dotted_quad(addr_text), length)


def covers(prefixes: Sequence[Prefix], address: int) -> Optional[Prefix]:
    """Longest-match lookup of ``address`` among ``prefixes``.

    Returns the most specific prefix containing the address, or ``None``.
    Linear scan — the simulator's forwarding checks operate on small tables;
    the routing layer itself keys RIBs by exact prefix.
    """
    best: Optional[Prefix] = None
    for prefix in prefixes:
        if prefix.contains_address(address):
            if best is None or prefix.length > best.length:
                best = prefix
    return best


def aggregate_adjacent(a: Prefix, b: Prefix) -> Optional[Prefix]:
    """If ``a`` and ``b`` are sibling halves of a common supernet, return it.

    This is the inverse of :meth:`Prefix.subnets` and the primitive that BGP
    route aggregation is built from.  Returns ``None`` when the prefixes are
    not aggregable.
    """
    if a.length != b.length or a.length == 0:
        return None
    if a == b:
        return None
    parent_a = a.supernet()
    if parent_a == b.supernet() and parent_a.length == a.length - 1:
        return parent_a
    return None
