"""Warm-start convergence cache.

The paper's figures are built from hundreds of hijack scenarios that share
one topology and differ only in attacker placement and seed — yet a cold
run rebuilds the network, re-establishes every session and re-runs initial
convergence each time.  This package amortises that: the *baseline* (the
converged pre-attack state) is captured once per distinct
``(graph, origins, deployment, checker mode, speaker config, timing)``
combination and every later scenario forks from the snapshot.

Two halves:

* :mod:`repro.warmstart.baseline` — the content-addressed
  :class:`~repro.warmstart.baseline.BaselineKey`, the captured
  :class:`~repro.warmstart.baseline.BaselineSnapshot`, and the key
  derivation from a scenario;
* :mod:`repro.warmstart.cache` — the in-process LRU with optional on-disk
  spill (:class:`~repro.warmstart.cache.WarmStartCache`) and the
  ``REPRO_WARMSTART`` environment resolution.

The safety property the tests pin down: a warm-started run's outcome,
alarm log and metric snapshot (timing keys masked) are bit-identical to
the cold run's, on every deployment kind and both attack timings.  See
``docs/warmstart.md`` for the protocol and the conditions under which the
property holds.
"""

from repro.warmstart.baseline import (
    SNAPSHOT_FORMAT,
    BaselineKey,
    BaselineSnapshot,
    compute_baseline_key,
    snapshot_is_seed_free,
)
from repro.warmstart.cache import (
    DEFAULT_CACHE_DIR,
    WARMSTART_ENV_VAR,
    WarmStartCache,
    resolve_warm_start,
)

__all__ = [
    "SNAPSHOT_FORMAT",
    "BaselineKey",
    "BaselineSnapshot",
    "compute_baseline_key",
    "snapshot_is_seed_free",
    "DEFAULT_CACHE_DIR",
    "WARMSTART_ENV_VAR",
    "WarmStartCache",
    "resolve_warm_start",
]
