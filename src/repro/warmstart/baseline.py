"""Baseline keys and snapshots.

A *baseline* is everything about a hijack scenario that happens before the
attack: topology build, session establishment and (for post-convergence
timing) initial convergence.  Scenarios that agree on the inputs below
share a baseline bit-for-bit, so the converged state can be captured once
and restored for each of them:

* the topology (content digest over nodes, roles and edges);
* the genuine origin set and target prefix;
* the deployment plan (kind plus the exact capable-AS set — a PARTIAL
  plan is drawn from the scenario seed, so two PARTIAL scenarios share a
  baseline only when they drew the same capable set);
* the checker mode and attack timing;
* the speaker configuration and link delay;
* whether the run is instrumented (metric registration changes captured
  counter state, so instrumented and plain baselines must not mix).

The scenario *seed* is deliberately absent: with MRAI disabled and no
jitter the baseline consumes no randomness, and
:func:`snapshot_is_seed_free` verifies that before a snapshot may be
cached.  A baseline that did touch its RNG streams is seed-dependent and
is refused (counted as uncacheable) rather than silently shared.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, FrozenSet, List, Optional, Tuple

from repro.core.alarms import Alarm
from repro.net.asn import ASN

if TYPE_CHECKING:  # pragma: no cover - type-only imports (avoid cycles)
    from repro.bgp.speaker import SpeakerConfig
    from repro.experiments.runner import HijackScenario

#: Bump whenever the captured state layout changes; on-disk entries with a
#: different format are treated as cache misses.
SNAPSHOT_FORMAT = 1


@dataclass(frozen=True)
class BaselineKey:
    """Content address of one baseline.  All fields are scalars."""

    graph_digest: str
    prefix: str
    origins: Tuple[ASN, ...]
    deployment: str
    capable_digest: str
    checker_mode: str
    timing: str
    mrai: float
    hold_time: float
    med_across_peers: bool
    prefer_oldest: bool
    link_delay: float
    instrumented: bool

    def digest(self) -> str:
        """Canonical SHA-256 of the key (cache file name / LRU key)."""
        parts = [
            f"format={SNAPSHOT_FORMAT}",
            f"graph={self.graph_digest}",
            f"prefix={self.prefix}",
            "origins=" + ",".join(str(origin) for origin in self.origins),
            f"deployment={self.deployment}",
            f"capable={self.capable_digest}",
            f"checker_mode={self.checker_mode}",
            f"timing={self.timing}",
            f"mrai={self.mrai!r}",
            f"hold_time={self.hold_time!r}",
            f"med_across_peers={self.med_across_peers}",
            f"prefer_oldest={self.prefer_oldest}",
            f"link_delay={self.link_delay!r}",
            f"instrumented={self.instrumented}",
        ]
        return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def _capable_digest(capable: FrozenSet[ASN]) -> str:
    payload = ",".join(str(asn) for asn in sorted(capable))
    return hashlib.sha256(payload.encode("ascii")).hexdigest()


def compute_baseline_key(
    scenario: "HijackScenario",
    capable: FrozenSet[ASN],
    config: "SpeakerConfig",
    link_delay: float,
    instrumented: bool,
) -> BaselineKey:
    """Derive the baseline key for ``scenario`` under ``config``.

    ``capable`` is the resolved deployment plan's capable set — passed
    explicitly (rather than re-derived from the deployment kind) so the
    key pins the *materialised* plan, including the seed-drawn PARTIAL
    sample.
    """
    return BaselineKey(
        graph_digest=scenario.graph.content_digest(),
        prefix=str(scenario.prefix),
        origins=tuple(sorted(scenario.origins)),
        deployment=scenario.deployment.value,
        capable_digest=_capable_digest(capable),
        checker_mode=scenario.checker_mode.value,
        timing=scenario.timing.value,
        mrai=config.mrai,
        hold_time=config.hold_time,
        med_across_peers=config.med_across_peers,
        prefer_oldest=config.prefer_oldest,
        link_delay=link_delay,
        instrumented=instrumented,
    )


@dataclass
class BaselineSnapshot:
    """One captured baseline: network state, checker state, alarms, metrics.

    The container dicts are produced by the per-class ``snapshot_state``
    protocol (explicit capture, no ``copy.deepcopy``); the value objects
    inside them are immutable and shared, which keeps in-process restores
    cheap and lets one ``pickle.dumps`` call preserve shared identity for
    the on-disk cache.
    """

    key_digest: str
    network: Dict[str, Any]
    checkers: Dict[ASN, Dict[str, Any]]
    alarms: List[Alarm]
    metrics: Optional[Dict[str, Any]] = None


def snapshot_is_seed_free(network_state: Dict[str, Any]) -> bool:
    """True when the captured baseline consumed no simulator randomness.

    The baseline key omits the scenario seed, so a snapshot may only be
    cached if its RNG streams were never materialised — otherwise two
    scenarios differing only in seed would share state they should not.
    """
    sim_state = network_state.get("sim", {})
    streams = sim_state.get("rng_streams", {})
    return not streams
