"""The warm-start cache: in-process LRU with optional on-disk spill.

One :class:`WarmStartCache` holds recently used
:class:`~repro.warmstart.baseline.BaselineSnapshot` objects keyed by their
:class:`~repro.warmstart.baseline.BaselineKey` digest.  The in-process
tier is a small LRU (baselines for big topologies are the dominant memory
cost of a sweep); the optional disk tier under ``~/.cache/repro-warmstart``
persists baselines across processes and sweeps.

Resolution (:func:`resolve_warm_start`) follows the ``REPRO_WARMSTART``
environment variable so pool workers inherit the caller's choice the same
way ``REPRO_SANITIZE`` propagates:

* unset / ``""`` / ``0`` / ``off`` — disabled;
* ``1`` / ``on`` / ``mem`` — in-process LRU only;
* ``disk`` — LRU plus the default on-disk directory;
* any other value — LRU plus a disk directory at that path.

The cache owns a *private* :class:`~repro.obs.metrics.MetricsRegistry` for
its instruments (``warmstart.hits``, ``warmstart.misses``,
``warmstart.disk_hits``, ``warmstart.puts``, ``warmstart.evictions``,
``warmstart.uncacheable``, ``warmstart.restore_seconds``).  They are
deliberately not written into per-run registries: restore time is wall
clock, and a run's metric snapshot must stay bit-identical between warm
and cold runs.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Optional, Union

from repro.fsio import fsync_dir
from repro.obs.metrics import MetricsRegistry, SnapshotValue
from repro.warmstart.baseline import SNAPSHOT_FORMAT, BaselineKey, BaselineSnapshot

WARMSTART_ENV_VAR = "REPRO_WARMSTART"
DEFAULT_CACHE_DIR = Path("~/.cache/repro-warmstart")

#: Restore times are milliseconds-scale; the default queue-depth buckets
#: would lump everything into the first bin.
_RESTORE_SECONDS_BUCKETS = (
    0.001, 0.002, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)

_DISABLED_VALUES = frozenset({"", "0", "off", "false", "no", "none"})
_MEMORY_VALUES = frozenset({"1", "on", "true", "yes", "mem", "memory"})


class WarmStartCache:
    """LRU of baseline snapshots, optionally backed by a disk directory."""

    def __init__(
        self, capacity: int = 8, disk_dir: Optional[Union[str, Path]] = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.disk_dir = Path(disk_dir).expanduser() if disk_dir is not None else None
        self._entries: "OrderedDict[str, BaselineSnapshot]" = OrderedDict()
        self.metrics = MetricsRegistry()
        self._m_hits = self.metrics.counter("warmstart.hits")
        self._m_misses = self.metrics.counter("warmstart.misses")
        self._m_disk_hits = self.metrics.counter("warmstart.disk_hits")
        self._m_puts = self.metrics.counter("warmstart.puts")
        self._m_evictions = self.metrics.counter("warmstart.evictions")
        self._m_uncacheable = self.metrics.counter("warmstart.uncacheable")
        self._m_restore_seconds = self.metrics.histogram(
            "warmstart.restore_seconds", bounds=_RESTORE_SECONDS_BUCKETS
        )

    # -- lookup / store ----------------------------------------------------

    def get(self, key: BaselineKey) -> Optional[BaselineSnapshot]:
        """The snapshot for ``key``, or None (counted as hit or miss)."""
        digest = key.digest()
        snapshot = self._entries.get(digest)
        if snapshot is not None:
            self._entries.move_to_end(digest)
            self._m_hits.inc()
            return snapshot
        if self.disk_dir is not None:
            snapshot = self._load_from_disk(digest)
            if snapshot is not None:
                self._m_hits.inc()
                self._m_disk_hits.inc()
                self._remember(digest, snapshot)
                return snapshot
        self._m_misses.inc()
        return None

    def put(self, key: BaselineKey, snapshot: BaselineSnapshot) -> None:
        digest = key.digest()
        self._m_puts.inc()
        self._remember(digest, snapshot)
        if self.disk_dir is not None:
            self._store_to_disk(digest, snapshot)

    def note_uncacheable(self) -> None:
        """Record a baseline that was refused (seed-dependent state)."""
        self._m_uncacheable.inc()

    def observe_restore_seconds(self, seconds: float) -> None:
        self._m_restore_seconds.observe(seconds)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> Dict[str, SnapshotValue]:
        """The cache's instrument snapshot plus the live entry count."""
        out: Dict[str, SnapshotValue] = dict(self.metrics.snapshot())
        out["warmstart.entries"] = len(self._entries)
        return out

    # -- internals ---------------------------------------------------------

    def _remember(self, digest: str, snapshot: BaselineSnapshot) -> None:
        if digest in self._entries:
            self._entries.move_to_end(digest)
        self._entries[digest] = snapshot
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self._m_evictions.inc()

    def _disk_path(self, digest: str) -> Path:
        assert self.disk_dir is not None
        return self.disk_dir / f"{digest}.pkl"

    def _store_to_disk(self, digest: str, snapshot: BaselineSnapshot) -> None:
        assert self.disk_dir is not None
        payload = {
            "format": SNAPSHOT_FORMAT,
            "key_digest": digest,
            "snapshot": snapshot,
        }
        try:
            self.disk_dir.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a concurrent reader sees the old file or the
            # new one, never a torn write.
            handle = tempfile.NamedTemporaryFile(
                mode="wb", dir=self.disk_dir, suffix=".tmp", delete=False
            )
            try:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
            finally:
                handle.close()
            os.replace(handle.name, self._disk_path(digest))
            # The rename itself is not durable until the directory is
            # fsynced (ext4/xfs); a crash could otherwise lose the entry.
            fsync_dir(self.disk_dir)
        except OSError:
            # Disk tier is best-effort: an unwritable cache directory must
            # not fail the sweep, it just stays cold across processes.
            return

    def _load_from_disk(self, digest: str) -> Optional[BaselineSnapshot]:
        path = self._disk_path(digest)
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("format") != SNAPSHOT_FORMAT:
            return None
        if payload.get("key_digest") != digest:
            return None
        snapshot = payload.get("snapshot")
        if not isinstance(snapshot, BaselineSnapshot):
            return None
        return snapshot


#: Process-wide caches by resolved spec, so every call site in one process
#: (and every scenario handled by one pool worker) shares a cache per mode.
_SHARED_CACHES: Dict[str, WarmStartCache] = {}


def resolve_warm_start(
    spec: Union[None, str, WarmStartCache],
) -> Optional[WarmStartCache]:
    """Resolve a warm-start request to a cache instance (or None).

    ``spec`` may be a ready cache (returned as-is), a mode string as
    documented in the module docstring, or None — in which case the
    ``REPRO_WARMSTART`` environment variable decides, which is how pool
    workers inherit the parent's setting.
    """
    if isinstance(spec, WarmStartCache):
        return spec
    raw = spec if spec is not None else os.environ.get(WARMSTART_ENV_VAR, "")
    mode = raw.strip()
    lowered = mode.lower()
    if lowered in _DISABLED_VALUES:
        return None
    if lowered in _MEMORY_VALUES:
        cache_id = "mem"
        disk_dir: Optional[Path] = None
    elif lowered == "disk":
        cache_id = "disk"
        disk_dir = DEFAULT_CACHE_DIR.expanduser()
    else:
        disk_dir = Path(mode).expanduser()
        cache_id = f"dir:{disk_dir}"
    cache = _SHARED_CACHES.get(cache_id)
    if cache is None:
        cache = WarmStartCache(disk_dir=disk_dir)
        _SHARED_CACHES[cache_id] = cache
    return cache
