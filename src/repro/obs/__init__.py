"""Observability: metrics, run manifests and tracing spans.

The paper's evaluation attributes every alarm and suppressed route to a
concrete sequence of UPDATE propagation events; this package gives the
harness the same property at scale.  Three zero-dependency pieces:

* :mod:`repro.obs.metrics` — named counters, gauges and histograms wired
  into the simulator event loop, the BGP speaker and the MOAS checker.
  Everything recorded is a deterministic function of the simulated system,
  so metric snapshots can participate in bit-identity checks.
* :mod:`repro.obs.manifest` — JSONL run manifests: one record per scenario
  carrying spec, seed, outcome, metric snapshot and worker id, plus the
  masking helpers that quarantine the (documented) timing fields.
* :mod:`repro.obs.spans` — lightweight tracing spans (context-manager API,
  monotonic sim-time + wall-time, parent/child nesting) around the phases
  of a run, dumpable as JSON for flame-style inspection.

Disabled is the default everywhere: a simulator without a registry carries
``metrics=None`` and every hot-path instrumentation site is a single
``is not None`` guard.
"""

from repro.obs.manifest import (
    ManifestRecord,
    ManifestWriter,
    aggregate_manifest,
    manifests_equivalent,
    mask_timing,
    read_manifest,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ManifestRecord",
    "ManifestWriter",
    "MetricsRegistry",
    "Span",
    "SpanTracer",
    "aggregate_manifest",
    "manifests_equivalent",
    "mask_timing",
    "read_manifest",
]
