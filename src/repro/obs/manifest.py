"""JSONL run manifests.

A manifest is the attribution record of a sweep: one JSON line per
scenario, written in submission order, carrying everything needed to
re-validate (or re-run) that exact scenario:

* ``index`` — the submission index within the batch;
* ``seed`` — the scenario's seed;
* ``spec`` — a JSON-safe description of the scenario (deployment arm,
  origin/attacker placement, topology size, ...);
* ``outcome`` — the measured :class:`~repro.experiments.runner.HijackOutcome`
  as a dict;
* ``metrics`` — the per-run instrument snapshot from the
  :class:`~repro.obs.metrics.MetricsRegistry`;
* ``worker`` — which process produced the record;
* ``wall_seconds`` — wall time of the run.

Everything is deterministic except the **timing fields** (:data:`TIMING_KEYS`),
which are quarantined exactly like ``HijackOutcome.wall_seconds``:
:func:`mask_timing` zeroes them recursively, and two manifests are
:func:`manifests_equivalent` when their masked records are bit-identical.
That is the property the executor tests pin down: ``workers=1`` and
``workers=4`` runs of the same scenario list produce equivalent manifests.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

#: Keys holding measurements of the harness process rather than the
#: simulated system.  Masked before any equality comparison.
#: ``checkpoint_seconds`` is the stream service's durability cost — wall
#: time spent flushing alarms and writing checkpoints.  ``warm_start`` and
#: ``restore_seconds`` describe how a run was *executed* (cold vs. from a
#: warm-start baseline), never what it computed, so a cold manifest and a
#: warm one of the same scenario list must compare equal — that is the
#: warm-start safety property the ``warm-smoke`` CI job pins down.
TIMING_KEYS = frozenset(
    {
        "wall_seconds",
        "worker",
        "events_per_sec",
        "checkpoint_seconds",
        "warm_start",
        "restore_seconds",
    }
)

JsonDict = Dict[str, Any]


@dataclass
class ManifestRecord:
    """One scenario's line in a run manifest."""

    index: int
    seed: int
    spec: JsonDict = field(default_factory=dict)
    outcome: JsonDict = field(default_factory=dict)
    metrics: JsonDict = field(default_factory=dict)
    worker: Union[int, str] = 0
    wall_seconds: float = 0.0
    warm_start: JsonDict = field(default_factory=dict)

    def to_dict(self) -> JsonDict:
        return {
            "index": self.index,
            "seed": self.seed,
            "spec": self.spec,
            "outcome": self.outcome,
            "metrics": self.metrics,
            "worker": self.worker,
            "wall_seconds": self.wall_seconds,
            "warm_start": self.warm_start,
        }

    @classmethod
    def from_dict(cls, data: JsonDict) -> "ManifestRecord":
        return cls(
            index=int(data["index"]),
            seed=int(data["seed"]),
            spec=dict(data.get("spec", {})),
            outcome=dict(data.get("outcome", {})),
            metrics=dict(data.get("metrics", {})),
            worker=data.get("worker", 0),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            warm_start=dict(data.get("warm_start", {})),
        )

    def to_json_line(self) -> str:
        # sort_keys makes the byte stream canonical, so masked manifests
        # can be compared as text as well as as objects.
        return json.dumps(self.to_dict(), sort_keys=True)


class ManifestWriter:
    """Appends :class:`ManifestRecord` lines to a JSONL file.

    Usable as a context manager; records are flushed per line so a crashed
    sweep still leaves the completed scenarios attributable.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self.records_written = 0

    def write(self, record: ManifestRecord) -> None:
        if self._handle.closed:
            raise ValueError(f"manifest {self.path} is already closed")
        self._handle.write(record.to_json_line() + "\n")
        self._handle.flush()
        self.records_written += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "ManifestWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_manifest(path: Union[str, Path]) -> List[ManifestRecord]:
    """Parse a JSONL manifest back into records (submission order)."""
    records: List[ManifestRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid manifest JSON: {exc}"
                ) from exc
            records.append(ManifestRecord.from_dict(data))
    return records


def mask_timing(value: Any) -> Any:
    """Recursively zero every timing field (see :data:`TIMING_KEYS`).

    Returns a new structure; the input is not modified.  Dicts are walked
    by key, lists element-wise; any key in :data:`TIMING_KEYS` has its
    value replaced with 0 regardless of depth, so new wall-time fields
    nested inside metrics or span dumps are masked automatically.
    """
    if isinstance(value, dict):
        return {
            key: 0 if key in TIMING_KEYS else mask_timing(item)
            for key, item in value.items()
        }
    if isinstance(value, list):
        return [mask_timing(item) for item in value]
    return value


def manifests_equivalent(
    a: Sequence[ManifestRecord], b: Sequence[ManifestRecord]
) -> bool:
    """Bit-identical after masking timing fields, in order."""
    if len(a) != len(b):
        return False
    return all(
        mask_timing(ra.to_dict()) == mask_timing(rb.to_dict())
        for ra, rb in zip(a, b)
    )


def aggregate_manifest(records: Sequence[ManifestRecord]) -> JsonDict:
    """Aggregate a manifest into the paper's table shape.

    Records are grouped by ``(deployment, n_attackers)`` from their specs;
    each group yields mean/min/max poisoned fraction and mean alarms over
    its runs — the numbers behind one data point of Figures 9-11.  A
    ``totals`` section sums the throughput counters across the manifest.
    """
    groups: Dict[Tuple[str, int], List[ManifestRecord]] = {}
    for record in records:
        key = (
            str(record.spec.get("deployment", "?")),
            int(record.spec.get("n_attackers", 0)),
        )
        groups.setdefault(key, []).append(record)

    rows: List[JsonDict] = []
    for (deployment, n_attackers) in sorted(groups):
        members = groups[(deployment, n_attackers)]
        fractions = [
            float(r.outcome.get("poisoned_fraction", 0.0)) for r in members
        ]
        alarms = [int(r.outcome.get("alarms", 0)) for r in members]
        rows.append(
            {
                "deployment": deployment,
                "n_attackers": n_attackers,
                "runs": len(members),
                "mean_poisoned_fraction": sum(fractions) / len(fractions),
                "min_poisoned_fraction": min(fractions),
                "max_poisoned_fraction": max(fractions),
                "mean_alarms": sum(alarms) / len(alarms),
            }
        )

    totals = {
        "records": len(records),
        "events_processed": sum(
            int(r.outcome.get("events_processed", 0)) for r in records
        ),
        "updates_sent": sum(
            int(r.outcome.get("updates_sent", 0)) for r in records
        ),
        "alarms": sum(int(r.outcome.get("alarms", 0)) for r in records),
        "routes_suppressed": sum(
            int(r.outcome.get("routes_suppressed", 0)) for r in records
        ),
        "wall_seconds": sum(r.wall_seconds for r in records),
    }
    return {"rows": rows, "totals": totals}
