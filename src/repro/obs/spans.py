"""Lightweight tracing spans for simulation phases.

A :class:`SpanTracer` records nested phases of a run — topology build,
convergence, fault injection, recovery — with both clocks a phase has:

* **sim time** (deterministic, from ``Simulator.now`` via the tracer's
  clock callable), and
* **wall time** (a measurement of this process, quarantined in fields
  named ``wall_seconds`` exactly like ``HijackOutcome.wall_seconds``).

Usage is a plain context manager; nesting the ``with`` blocks nests the
spans::

    tracer = SpanTracer(clock=lambda: sim.now)
    with tracer.span("convergence"):
        with tracer.span("establish-sessions"):
            network.establish_sessions()
        network.run_to_convergence()
    print(tracer.to_json())

``as_dicts()``/``to_json()`` render the forest for flame-style inspection;
every dict carries ``name``, ``sim_start``, ``sim_end``, ``sim_seconds``,
``wall_seconds`` and ``children``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional


class Span:
    """One recorded phase; a node in the span forest."""

    __slots__ = (
        "name",
        "sim_start",
        "sim_end",
        "wall_seconds",
        "children",
        "_wall_start",
    )

    def __init__(self, name: str, sim_start: float, wall_start: float) -> None:
        self.name = name
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.wall_seconds: float = 0.0
        self.children: List["Span"] = []
        self._wall_start = wall_start

    @property
    def finished(self) -> bool:
        return self.sim_end is not None

    @property
    def sim_seconds(self) -> float:
        if self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, sim={self.sim_seconds:.4f}s, "
            f"{len(self.children)} children)"
        )


class _SpanContext:
    """The context manager returned by :meth:`SpanTracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "SpanTracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._tracer._finish(self._span)


class SpanTracer:
    """Records a forest of nested :class:`Span` objects.

    ``clock`` supplies monotonic sim time (``lambda: sim.now``); without
    one every sim-time field is 0.0 and only wall durations are recorded.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self._clock = clock
        self._roots: List[Span] = []
        self._stack: List[Span] = []

    def _now_sim(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def span(self, name: str) -> _SpanContext:
        """Open a span; use as ``with tracer.span("phase"):``."""
        # Span wall time is quarantined measurement data, never an input
        # to simulation logic.
        wall_start = time.perf_counter()  # repro-lint: disable=R002
        node = Span(name, sim_start=self._now_sim(), wall_start=wall_start)
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self._roots.append(node)
        self._stack.append(node)
        return _SpanContext(self, node)

    def _finish(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise RuntimeError(
                f"span {span.name!r} closed out of order; "
                f"open stack: {[s.name for s in self._stack]}"
            )
        self._stack.pop()
        span.sim_end = self._now_sim()
        ended = time.perf_counter()  # repro-lint: disable=R002
        span.wall_seconds = ended - span._wall_start

    @property
    def open_spans(self) -> List[str]:
        return [span.name for span in self._stack]

    def roots(self) -> List[Span]:
        return list(self._roots)

    def __len__(self) -> int:
        return sum(1 for _ in self.walk())

    def walk(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""

        def visit(span: Span) -> Iterator[Span]:
            yield span
            for child in span.children:
                yield from visit(child)

        for root in self._roots:
            yield from visit(root)

    def find(self, name: str) -> Optional[Span]:
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def as_dicts(self) -> List[Dict[str, Any]]:
        if self._stack:
            raise RuntimeError(
                f"cannot dump while spans are open: {self.open_spans}"
            )
        return [root.as_dict() for root in self._roots]

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dicts(), indent=indent)
