"""A zero-dependency metrics registry.

Three instrument kinds, all named, all create-or-get through a
:class:`MetricsRegistry`:

* :class:`Counter` — monotonically increasing count (events dispatched,
  updates sent, alarms raised);
* :class:`Gauge` — last-written value plus the observed maximum (queue
  depth);
* :class:`Histogram` — fixed-bound bucket counts with sum/count (queue
  depth distribution, span durations).

Everything recorded through these instruments must be a deterministic
function of the simulated system — wall-clock measurements stay out of the
registry and live in the explicitly quarantined timing fields of outcomes
and manifests.  That is what lets a metric snapshot participate in the
``workers=1 == workers=4`` bit-identity checks.

The disabled path is "no registry at all": instrumented modules hold
``Optional[...]`` instrument references and guard each hot-path update with
a single ``is not None`` test, so a run without metrics does no extra work
beyond that attribute check.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

SnapshotValue = Union[int, float, Dict[str, Union[int, float, List[int]]]]

#: Default histogram bucket upper bounds (inclusive), chosen for queue
#: depths and event counts; an implicit +inf bucket always terminates.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount

    def snapshot(self) -> int:
        return self.value

    def restore(self, value: int) -> None:
        """Overwrite from a :meth:`snapshot` value (warm-start restore)."""
        if value < 0:
            raise ValueError(f"counter {self.name!r} cannot be negative ({value})")
        self.value = int(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A last-value instrument that also tracks the observed maximum."""

    __slots__ = ("name", "value", "max_value", "_written")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0
        self._written = False

    def set(self, value: float) -> None:
        self.value = value
        if not self._written or value > self.max_value:
            self.max_value = value
        self._written = True

    def snapshot(self) -> Dict[str, Union[int, float, List[int]]]:
        return {"value": self.value, "max": self.max_value}

    def restore(self, snap: Dict[str, Union[int, float, List[int]]]) -> None:
        """Overwrite from a :meth:`snapshot` dict (warm-start restore).

        Marks the gauge as written: subsequent max tracking continues from
        the restored maximum rather than re-initialising.
        """
        value = snap["value"]
        max_value = snap["max"]
        if isinstance(value, list) or isinstance(max_value, list):
            raise TypeError(f"gauge {self.name!r} snapshot fields must be scalar")
        self.value = float(value)
        self.max_value = float(max_value)
        self._written = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value}, max={self.max_value})"


class Histogram:
    """Fixed-bound bucket counts with a running sum and count.

    ``bounds`` are inclusive upper bounds in increasing order; one final
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = len(self.bounds)  # overflow bucket by default
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Union[int, float, List[int]]]:
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": list(self.bucket_counts),
        }

    def restore(self, snap: Dict[str, Union[int, float, List[int]]]) -> None:
        """Overwrite from a :meth:`snapshot` dict (warm-start restore)."""
        buckets = snap["buckets"]
        count = snap["count"]
        total = snap["sum"]
        if not isinstance(buckets, list):
            raise TypeError(f"histogram {self.name!r} snapshot lacks buckets")
        if isinstance(count, list) or isinstance(total, list):
            raise TypeError(f"histogram {self.name!r} snapshot fields must be scalar")
        if len(buckets) != len(self.bucket_counts):
            raise ValueError(
                f"histogram {self.name!r} snapshot has {len(buckets)} buckets, "
                f"instrument has {len(self.bucket_counts)}"
            )
        self.bucket_counts = [int(b) for b in buckets]
        self.count = int(count)
        self.total = float(total)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, n={self.count}, mean={self.mean:.2f})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Create-or-get registry of named instruments.

    Instrument names are dotted (``sim.events``, ``bgp.updates_sent``);
    asking twice for the same name returns the same instrument, which is
    how per-speaker instrumentation aggregates network-wide without any
    coordination.  Asking for an existing name as a different kind raises.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Optional[Instrument]:
        existing = self._instruments.get(name)
        if existing is None:
            return None
        if not isinstance(existing, kind):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(existing).__name__}, not {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        existing = self._get(name, Counter)
        if existing is not None:
            assert isinstance(existing, Counter)
            return existing
        instrument = Counter(name)
        self._instruments[name] = instrument
        return instrument

    def gauge(self, name: str) -> Gauge:
        existing = self._get(name, Gauge)
        if existing is not None:
            assert isinstance(existing, Gauge)
            return existing
        instrument = Gauge(name)
        self._instruments[name] = instrument
        return instrument

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        existing = self._get(name, Histogram)
        if existing is not None:
            assert isinstance(existing, Histogram)
            return existing
        instrument = Histogram(name, bounds)
        self._instruments[name] = instrument
        return instrument

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def instruments(self) -> Iterator[Tuple[str, Instrument]]:
        for name in sorted(self._instruments):
            yield name, self._instruments[name]

    def snapshot(self) -> Dict[str, SnapshotValue]:
        """All instrument values, keyed by name in sorted order.

        The result is JSON-serialisable and — because nothing wall-clock
        flows through instruments — deterministic for a deterministic run.
        """
        return {name: inst.snapshot() for name, inst in self.instruments()}

    def restore_snapshot(self, snapshot: Mapping[str, SnapshotValue]) -> None:
        """Overwrite instrument values from a :meth:`snapshot` capture.

        Instruments are created on demand (histograms with default bounds),
        but in the warm-start path every name already exists — components
        register their instruments at construction, before the restore runs.
        """
        for name, value in snapshot.items():
            if isinstance(value, dict):
                if "buckets" in value:
                    self.histogram(name).restore(value)
                else:
                    self.gauge(name).restore(value)
            else:
                self.counter(name).restore(int(value))
