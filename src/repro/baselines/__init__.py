"""Baselines: the related-work approaches the paper positions against (§2).

* :mod:`repro.baselines.irr` — route filtering against Internet Routing
  Registry records ([21], Yu's route-filtering model).  Its weakness, per
  the paper: "keeping the IRR record updated is not a mandatory
  requirement for ISPs, some IRR records are outdated or inaccurate" — the
  registry here models both incomplete coverage and staleness.
* :mod:`repro.baselines.origin_auth` — S-BGP-style cryptographic origin
  attestation ([14], Kent et al.).  Strong when certificates exist and the
  verifying router participates in the PKI, but (the paper's critique)
  requiring "substantial modification to the current routing protocol
  implementations" — modelled as certificate-coverage and verifier-
  deployment parameters.
* :mod:`repro.baselines.dns_checking` — Bates et al.'s DNS origin lookup
  on *every* update ([3]); contrasted with the MOAS-list design where DNS
  is consulted only on conflicts, and subject to the §2 circular
  dependency (lookups fail where routing is broken).

All three plug into the same import-validator interface the MOAS checker
uses, so the experiment harness can run them as drop-in arms.
"""

from repro.baselines.irr import IrrRecord, IrrRegistry, IrrValidator
from repro.baselines.origin_auth import (
    AttestationAuthority,
    OriginAuthValidator,
    attestation_communities,
)
from repro.baselines.dns_checking import PerUpdateDnsValidator

__all__ = [
    "IrrRecord",
    "IrrRegistry",
    "IrrValidator",
    "AttestationAuthority",
    "OriginAuthValidator",
    "attestation_communities",
    "PerUpdateDnsValidator",
]
