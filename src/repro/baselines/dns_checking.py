"""Per-update DNS origin checking (the paper's §2 reference [3]).

Bates et al. proposed verifying every incoming route against a
(prefix → origin AS) DNS record.  The paper's two critiques:

1. **query load** — every update triggers a lookup, versus the MOAS-list
   design where DNS is consulted only when lists conflict ("Combining our
   solution with this DNS-based checking minimizes the frequency of DNS
   queries"); the validator counts its queries so benches can compare;
2. **circular dependency** — "DNS operations rely on the routing to
   function correctly"; when the resolver reports the zone unreachable
   the router is left unable to verify and must accept (failing closed
   would black-hole every prefix whose DNS sits behind the faulty route).
"""

from __future__ import annotations

from typing import Optional

from repro.bgp.attributes import PathAttributes
from repro.core.origin_verification import OriginOracle
from repro.net.addresses import Prefix
from repro.net.asn import ASN


class PerUpdateDnsValidator:
    """Import validator querying the origin oracle on *every* update."""

    def __init__(self, oracle: OriginOracle) -> None:
        self.oracle = oracle
        self.checks = 0
        self.rejections = 0
        self.lookup_failures = 0

    def __call__(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> bool:
        self.checks += 1
        origin = attributes.origin_asn
        if origin is None:
            return True
        authorised = self.oracle.authorised_origins(prefix)
        if authorised is None:
            self.lookup_failures += 1
            return True  # cannot verify: fail open (see module docstring)
        if origin not in authorised:
            self.rejections += 1
            return False
        return True
