"""S-BGP-style origin attestation (the paper's §2 reference [14]).

In Secure BGP, an *address attestation* signed under the address-space
PKI binds a prefix to the ASes authorised to originate it; a verifying
router rejects originations lacking a valid attestation.

The simulation models the attestation as a 16-bit authenticator tag
carried in a community ``(origin : tag)``, where the tag is a truncated
HMAC over (prefix, origin) under the authority's key.  An attacker cannot
mint a tag for itself; it *can* replay the genuine origin's attestation
with a spoofed AS path — precisely why S-BGP needs *route* attestations
on top of *address* attestations, and the same §4.3 blind spot the MOAS
list has.

The paper's deployment critique is parameterised twice over:

* ``cert_coverage`` — only prefixes whose holders obtained certificates
  are protected; unattested prefixes cannot be verified and must be
  accepted;
* verifier deployment — routers without the PKI machinery (not running
  this validator) accept everything, exactly like partial MOAS deployment.
"""

from __future__ import annotations

import hashlib
import hmac
import random
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.bgp.attributes import Community, PathAttributes
from repro.core.moas_list import MLVAL
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


class AttestationAuthority:
    """Issues and verifies address attestations.

    One authority models the address-space PKI root.  ``issue`` hands the
    legitimate origin the communities to attach; ``verify`` recomputes the
    tag.  The key never leaves the authority, so the attacker cannot
    forge; experiments give attackers access only to ``issue`` output they
    could have observed on the wire (replay).
    """

    def __init__(self, secret: bytes = b"repro-sbgp-authority") -> None:
        self._secret = secret
        self._attested: Dict[Prefix, Set[ASN]] = {}

    def _tag(self, prefix: Prefix, origin: ASN) -> int:
        digest = hmac.new(
            self._secret, f"{prefix}|{origin}".encode(), hashlib.sha256
        ).digest()
        tag = int.from_bytes(digest[:2], "big")
        if tag == MLVAL:
            tag ^= 0x0001  # keep the MOAS-list community value unambiguous
        return tag

    def certify(self, prefix: Prefix, origins: Iterable[ASN]) -> None:
        """Record that ``origins`` hold certificates for ``prefix``."""
        origin_set = {validate_asn(a) for a in origins}
        if not origin_set:
            raise ValueError(f"{prefix} needs at least one certified origin")
        self._attested.setdefault(prefix, set()).update(origin_set)

    def is_certified(self, prefix: Prefix) -> bool:
        return prefix in self._attested

    def issue(self, prefix: Prefix, origin: ASN) -> FrozenSet[Community]:
        """The attestation communities a certified origin attaches."""
        if origin not in self._attested.get(prefix, set()):
            raise PermissionError(
                f"AS{origin} holds no certificate for {prefix}"
            )
        return frozenset({Community(origin, self._tag(prefix, origin))})

    def verify(
        self, prefix: Prefix, origin: ASN, attributes: PathAttributes
    ) -> Optional[bool]:
        """True/False for certified prefixes; None when unattested
        (nothing to verify against)."""
        if prefix not in self._attested:
            return None
        expected = Community(origin, self._tag(prefix, origin))
        return expected in attributes.communities


def attestation_communities(
    authority: AttestationAuthority, prefix: Prefix, origin: ASN
) -> FrozenSet[Community]:
    """Convenience wrapper mirroring :func:`repro.core.moas_communities`."""
    return authority.issue(prefix, origin)


class OriginAuthValidator:
    """Import validator: reject originations that fail attestation.

    Unattested prefixes (no certificate issued — the coverage gap) are
    accepted, as a real deployment must during rollout.
    """

    def __init__(self, authority: AttestationAuthority) -> None:
        self.authority = authority
        self.checks = 0
        self.rejections = 0
        self.unverifiable = 0

    def __call__(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> bool:
        self.checks += 1
        origin = attributes.origin_asn
        if origin is None:
            return True
        verdict = self.authority.verify(prefix, origin, attributes)
        if verdict is None:
            self.unverifiable += 1
            return True
        if not verdict:
            self.rejections += 1
            return False
        return True
