"""IRR-based route filtering (the paper's §2 reference [21]).

An Internet Routing Registry stores *route objects*: (prefix, origin AS)
claims registered by address holders.  A filtering router rejects any
announcement whose (prefix, origin) pair has no matching route object.

The paper's critique, which this model parameterises:

* **coverage** — registration is voluntary; unregistered prefixes cannot
  be filtered at all (a filtering router must accept them or lose
  reachability — we accept, the operationally forced choice);
* **staleness** — records outlive reality.  A stale record for a previous
  holder both *blocks* the legitimate new origin (false positive) and
  *admits* an attacker who happens to match the stale claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Set, Tuple

from repro.bgp.attributes import PathAttributes
from repro.net.addresses import Prefix
from repro.net.asn import ASN, validate_asn


@dataclass(frozen=True)
class IrrRecord:
    """One route object: who the registry *believes* may originate."""

    prefix: Prefix
    origins: FrozenSet[ASN]
    stale: bool = False


class IrrRegistry:
    """The registry: a best-effort, possibly outdated origin database."""

    def __init__(self) -> None:
        self._records: Dict[Prefix, IrrRecord] = {}

    def register(self, prefix: Prefix, origins: Iterable[ASN]) -> None:
        origin_set = frozenset(validate_asn(a) for a in origins)
        if not origin_set:
            raise ValueError(f"{prefix} needs at least one origin")
        self._records[prefix] = IrrRecord(prefix, origin_set, stale=False)

    def make_stale(self, prefix: Prefix, wrong_origins: Iterable[ASN]) -> None:
        """Replace a record with an outdated claim (previous holder)."""
        origin_set = frozenset(validate_asn(a) for a in wrong_origins)
        if not origin_set:
            raise ValueError("stale record still needs origins")
        self._records[prefix] = IrrRecord(prefix, origin_set, stale=True)

    def drop(self, prefix: Prefix) -> None:
        """Unregister (the voluntary-participation gap)."""
        self._records.pop(prefix, None)

    def lookup(self, prefix: Prefix) -> Optional[IrrRecord]:
        return self._records.get(prefix)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._records

    @classmethod
    def from_ground_truth(
        cls,
        bindings: Dict[Prefix, FrozenSet[ASN]],
        coverage: float,
        staleness: float,
        rng: random.Random,
        stale_origin_pool: Iterable[ASN] = (),
    ) -> "IrrRegistry":
        """Degrade ground truth into a realistic registry.

        ``coverage`` of the prefixes get a record at all; of those,
        ``staleness`` carry an outdated origin drawn from
        ``stale_origin_pool`` (or an arbitrary wrong ASN).
        """
        if not 0 <= coverage <= 1:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        if not 0 <= staleness <= 1:
            raise ValueError(f"staleness must be in [0, 1], got {staleness}")
        registry = cls()
        pool = sorted(set(stale_origin_pool))
        for prefix, origins in sorted(bindings.items(), key=lambda kv: str(kv[0])):
            if rng.random() >= coverage:
                continue
            if rng.random() < staleness:
                if pool:
                    wrong = rng.choice(pool)
                else:
                    wrong = (max(origins) % 64000) + 1
                registry.make_stale(prefix, [wrong])
            else:
                registry.register(prefix, origins)
        return registry


class IrrValidator:
    """Import validator enforcing the registry's route objects.

    Returns False (reject) only when the registry has a record for the
    prefix *and* the route's origin is not in it.  Unregistered prefixes
    pass — dropping them would break reachability for every legitimate
    unregistered destination, which no operator deploys.
    """

    def __init__(self, registry: IrrRegistry) -> None:
        self.registry = registry
        self.checks = 0
        self.rejections = 0
        self.unfilterable = 0  # announcements for unregistered prefixes

    def __call__(
        self, peer: ASN, prefix: Prefix, attributes: PathAttributes
    ) -> bool:
        self.checks += 1
        record = self.registry.lookup(prefix)
        if record is None:
            self.unfilterable += 1
            return True
        origin = attributes.origin_asn
        if origin is None:
            return True  # aggregated AS_SET origin: not filterable
        if origin not in record.origins:
            self.rejections += 1
            return False
        return True
