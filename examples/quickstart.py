#!/usr/bin/env python3
"""Quickstart — the paper's Figure 6 scenario, end to end.

AS 1 and AS 2 both legitimately originate prefix p (multi-homing) and
attach the MOAS list {1, 2} to their announcements.  AS Z (= AS 5) then
falsely originates p with a forged list {1, 2, 5}.  Router AS X (= AS 4)
observes the inconsistency, raises an alarm, verifies the origin against
the MOASRR registry, and suppresses the bogus route.

Run:  python examples/quickstart.py
"""

from repro import (
    AlarmLog,
    ASGraph,
    DeploymentPlan,
    GroundTruthOracle,
    Network,
    Prefix,
    PrefixOriginRegistry,
    moas_communities,
)

# The Figure 6 topology: origins 1 and 2, transit 3 and 4, attacker 5.
graph = ASGraph.from_edges(
    [(1, 3), (2, 3), (3, 4), (4, 5), (1, 4), (2, 5)], transit=[3, 4]
)
prefix = Prefix.parse("10.2.0.0/16")

# Ground truth: who may originate the prefix (the §4.4 MOASRR database).
registry = PrefixOriginRegistry()
registry.register(prefix, [1, 2])

# Build the network and deploy MOAS checking everywhere.
network = Network(graph)
alarms = AlarmLog()
DeploymentPlan.full(graph.asns()).apply(
    network, GroundTruthOracle(registry), shared_alarm_log=alarms
)
network.establish_sessions()

# Both genuine origins announce with the agreed MOAS list {1, 2}.
communities = moas_communities([1, 2])
network.originate(1, prefix, communities=communities)
network.originate(2, prefix, communities=communities)
network.run_to_convergence()

print("Before the attack — best origin per AS:")
for asn, origin in network.best_origins(prefix).items():
    print(f"  AS {asn}: origin AS {origin}")
assert len(alarms) == 0, "a valid MOAS must not raise alarms"

# AS 5 falsely originates p, forging a superset list {1, 2, 5} (§4.1).
network.originate(5, prefix, communities=moas_communities([1, 2, 5]))
network.run_to_convergence()

print("\nAfter the attack — best origin per AS:")
for asn, origin in network.best_origins(prefix).items():
    marker = "  <-- attacker itself" if asn == 5 else ""
    print(f"  AS {asn}: origin AS {origin}{marker}")

print(f"\nAlarms raised: {len(alarms)}")
for alarm in list(alarms)[:4]:
    print(f"  AS {alarm.detector}: {alarm.kind.value} "
          f"(suspect origin AS {alarm.suspect_origin})")

poisoned = [
    asn for asn, origin in network.best_origins(prefix).items()
    if asn != 5 and origin == 5
]
print(f"\nNon-attacker ASes adopting the false route: {poisoned or 'none'}")
assert not poisoned, "full deployment must suppress the forged route"
print("The forged announcement was detected and suppressed everywhere.")
