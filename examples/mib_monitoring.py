#!/usr/bin/env python3
"""MIB-based MOAS monitoring (§4.2's management-plane deployment).

"If the router is equipped to support the new BGP MIB, one could also run
a management application to get all MOAS List through the MIB interface
and check the MOAS List consistency."

A management station polls the BGP MIBs of two vantage routers: no router
software changes, no forwarding impact — detection as pure network
management.  A hijack is injected mid-demo and the next poll flags it.

Run:  python examples/mib_monitoring.py
"""

from repro import ASGraph, Network, Prefix, moas_communities
from repro.core import BgpMib, MibMoasApplication

prefix = Prefix.parse("10.2.0.0/16")

# The Figure 6 topology again: origins 1 and 2, transit 3/4, rogue 5.
graph = ASGraph.from_edges(
    [(1, 3), (2, 3), (3, 4), (4, 5), (1, 4), (2, 5)], transit=[3, 4]
)
network = Network(graph)
network.establish_sessions()

communities = moas_communities([1, 2])
network.originate(1, prefix, communities=communities)
network.originate(2, prefix, communities=communities)
network.run_to_convergence()

# The management station polls the MIBs of the two transit routers.
station = MibMoasApplication([BgpMib(network.speaker(3)),
                              BgpMib(network.speaker(4))])

print("Poll 1 — healthy network")
print("peer table of AS 4 (bgp4PeerTable):")
for row in BgpMib(network.speaker(4)).peer_table():
    print(f"  AS{row.local_asn} <-> AS{row.remote_asn}: {row.state}")
print("path-attribute table of AS 4 (bgp4PathAttrTable):")
for row in BgpMib(network.speaker(4)).path_attr_table():
    star = "*" if row.best else " "
    print(f" {star} {row.prefix} via AS{row.peer}  path {list(row.as_path.asns())}")
findings = station.poll()
print(f"management findings: {len(findings)} (valid MOAS is consistent)\n")

print("AS 5 now falsely originates the prefix...\n")
network.originate(5, prefix)
network.run_to_convergence()

print("Poll 2 — after the false origination")
findings = station.poll()
for finding in findings:
    print(f"  INCONSISTENT MOAS lists for {finding.prefix}:")
    for lst in sorted(finding.lists_seen, key=lambda l: sorted(l)):
        print(f"    list {sorted(lst)}")
    print(f"    origins seen: {sorted(finding.origins_seen)}")
    print(f"    observed via MIBs of: AS{sorted(finding.observed_at)}")

assert findings, "the management application must flag the hijack"
print("\nThe hijack was caught purely through the management plane —")
print("no BGP implementation changes on any router.")
