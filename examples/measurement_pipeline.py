#!/usr/bin/env python3
"""The §3 measurement pipeline on RouteViews-style dumps.

Demonstrates the full chain the paper runs against the Oregon RouteViews
archive:

  daily table dumps -> AS-path peering inference -> MOAS observation ->
  duration statistics -> off-line MOAS-list consistency monitoring (§4.2)

A short synthetic dump series is generated inline (with a fault event on
day 2 mimicking the April 1998 AS 8584 incident), serialised to the dump
text format, parsed back and analysed.

Run:  python examples/measurement_pipeline.py
"""

from repro import OfflineMonitor, Prefix, PrefixOriginRegistry
from repro.bgp.attributes import AsPath
from repro.measurement import DurationTracker, MoasObserver
from repro.topology.inference import infer_from_table
from repro.topology.routeviews import (
    RouteViewsTable,
    parse_table_dump,
    render_table_dump,
)

PREFIXES = {
    "multi-homed": Prefix.parse("10.1.0.0/16"),   # valid MOAS {100, 200}
    "single": Prefix.parse("10.2.0.0/16"),        # normal single origin
    "victim": Prefix.parse("10.3.0.0/16"),        # hijacked on day 2
}
COLLECTOR_PEERS = (7, 8)
FAULTY_AS = 8584


def build_day(day: int) -> RouteViewsTable:
    """One day's dump as the collector would see it."""
    table = RouteViewsTable(date=f"1998-04-{5 + day:02d}", collector="oregon")
    # The multi-homed prefix is announced by AS 100 and AS 200 every day.
    table.add(PREFIXES["multi-homed"], 7, AsPath.from_asns([7, 20, 100]))
    table.add(PREFIXES["multi-homed"], 8, AsPath.from_asns([8, 30, 200]))
    # The single-origin prefix.
    table.add(PREFIXES["single"], 7, AsPath.from_asns([7, 20, 300]))
    table.add(PREFIXES["single"], 8, AsPath.from_asns([8, 30, 20, 300]))
    # The victim prefix: normally from AS 400; on day 2 AS 8584 also
    # announces it (the fault).
    table.add(PREFIXES["victim"], 7, AsPath.from_asns([7, 20, 400]))
    if day == 2:
        table.add(PREFIXES["victim"], 8, AsPath.from_asns([8, FAULTY_AS]))
    else:
        table.add(PREFIXES["victim"], 8, AsPath.from_asns([8, 30, 400]))
    return table


# --- serialise and re-parse, as the real pipeline would --------------------
dump_texts = [render_table_dump(build_day(day)) for day in range(5)]
print("sample dump (day 2):")
print(dump_texts[2])

tables = [parse_table_dump(text) for text in dump_texts]

# --- peering inference (§5.1) ----------------------------------------------
inference = infer_from_table(tables[0])
print(f"inferred AS graph: {len(inference.graph)} ASes, "
      f"{inference.graph.num_links()} links, "
      f"transit = {sorted(inference.transit)}")

# --- MOAS observation and durations (Figures 4, 5) --------------------------
observer = MoasObserver()
tracker = DurationTracker()
for day, table in enumerate(tables):
    cases = observer.observe_table(day, table)
    tracker.add_cases(cases)
    print(f"day {day}: {len(cases)} MOAS case(s): "
          + ", ".join(f"{c.prefix} by {sorted(c.origins)}" for c in cases))

print(f"\ndaily MOAS series: {observer.daily_series()}")
print(f"duration histogram: {tracker.histogram()} "
      "(the fault case lasted exactly one day)")

# --- off-line monitoring (§4.2) ---------------------------------------------
registry = PrefixOriginRegistry()
registry.register(PREFIXES["multi-homed"], [100, 200])
registry.register(PREFIXES["single"], [300])
registry.register(PREFIXES["victim"], [400])

from repro.core.moas_list import MoasList

claims = {
    (PREFIXES["multi-homed"], 100): MoasList([100, 200]),
    (PREFIXES["multi-homed"], 200): MoasList([100, 200]),
}
monitor = OfflineMonitor(claims=claims, registry=registry)
print("\noff-line monitor reports:")
for report in monitor.check_series(tables):
    print(" ", report.summary())
    for finding in report.conflicts:
        print(f"    CONFLICT on {finding.prefix}: origins "
              f"{sorted(finding.origins_seen)}, unauthorised "
              f"{sorted(finding.unauthorised_origins)}")

fault_report = monitor.check_table(tables[2])
assert len(fault_report.conflicts) == 1
assert fault_report.conflicts[0].unauthorised_origins == frozenset({FAULTY_AS})
print("\nthe monitor caught the day-2 fault and identified the bogus origin.")
