#!/usr/bin/env python3
"""Partial deployment study — how much checking is enough?

Extends the paper's Experiment 3 (which evaluates 50 % deployment) into a
full deployment-fraction sweep on the 46-AS topology: at each fraction of
MOAS-capable ASes, what share of the remaining ASes adopt false routes
when 20 % of ASes attack?

Run:  python examples/partial_deployment_study.py
"""

from repro.attack.placement import place_attackers, place_origins
from repro.eventsim.rng import RandomStreams
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.topology.generators import generate_paper_topology

TOPOLOGY_SIZE = 46
ATTACKER_FRACTION = 0.20
RUNS_PER_POINT = 9
FRACTIONS = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0)

graph = generate_paper_topology(TOPOLOGY_SIZE, seed=8)
streams = RandomStreams(1234)
n_attackers = round(ATTACKER_FRACTION * len(graph))

print(f"{TOPOLOGY_SIZE}-AS topology, {ATTACKER_FRACTION:.0%} attackers, "
      f"{RUNS_PER_POINT} runs per point\n")
print(f"{'deployed':>9s}  {'poisoned ASes':>13s}  {'alarms/run':>10s}")

series = []
for fraction in FRACTIONS:
    poisoned, alarms = [], []
    for run_index in range(RUNS_PER_POINT):
        origins = place_origins(graph, 1, streams.stream(f"o/{run_index}"))
        attackers = place_attackers(
            graph, n_attackers, streams.stream(f"a/{run_index}"),
            exclude=origins,
        )
        if fraction == 0.0:
            deployment = DeploymentKind.NONE
        elif fraction == 1.0:
            deployment = DeploymentKind.FULL
        else:
            deployment = DeploymentKind.PARTIAL
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=graph,
                origins=origins,
                attackers=attackers,
                deployment=deployment,
                partial_fraction=fraction,
                seed=run_index,
            )
        )
        poisoned.append(outcome.poisoned_fraction)
        alarms.append(outcome.alarms)
    mean_poisoned = sum(poisoned) / len(poisoned)
    mean_alarms = sum(alarms) / len(alarms)
    series.append((fraction, mean_poisoned))
    print(f"{fraction:>8.0%}  {mean_poisoned:>12.1%}  {mean_alarms:>10.1f}")

# The study's takeaway, checked programmatically: protection grows
# monotonically-ish with deployment, and even half deployment pays.
none_level = series[0][1]
half_level = next(p for f, p in series if f == 0.5)
full_level = series[-1][1]
print(f"\nhalf deployment removes "
      f"{(1 - half_level / none_level):.0%} of the damage; "
      f"full deployment removes {(1 - full_level / none_level):.0%}.")
assert full_level < half_level < none_level
