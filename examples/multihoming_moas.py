#!/usr/bin/env python3
"""Valid MOAS from multi-homing (the paper's §3.2 scenarios).

Two legitimate ways a prefix comes to be announced by multiple origin
ASes, both reproduced here:

1. **BGP + static configuration** (Figure 2): the organisation peers with
   ISP-1 via BGP (appearing as its own AS 4) while ISP-2 (AS 226) reaches
   it via static routes and announces the prefix as if local.
2. **AS number substitution on egress (ASE)**: the organisation peers
   using a private AS number that each provider strips, so every provider
   appears to originate the prefix.

In both cases the MOAS list makes the multiplicity verifiable: all
genuine announcements carry an identical list, so no alarms fire.

Run:  python examples/multihoming_moas.py
"""

from repro import (
    AlarmLog,
    ASGraph,
    DeploymentPlan,
    GroundTruthOracle,
    Network,
    Prefix,
    PrefixOriginRegistry,
    moas_communities,
)
from repro.net.asn import PRIVATE_AS_MIN, is_private_asn, strip_private_asns

# ---------------------------------------------------------------------------
print("Scenario 1 — Figure 2: BGP peering + static configuration")
print("-" * 60)

# Remote observer X=1, transit Y=2 / Z=3, origins AS 4 (the org itself)
# and AS 226 (the statically-configured ISP).
graph = ASGraph.from_edges([(1, 2), (1, 3), (2, 4), (3, 226)], transit=[2, 3])
prefix = Prefix.parse("10.2.0.0/16")

registry = PrefixOriginRegistry()
registry.register(prefix, [4, 226])
alarms = AlarmLog()
network = Network(graph)
DeploymentPlan.full(graph.asns()).apply(
    network, GroundTruthOracle(registry), shared_alarm_log=alarms
)
network.establish_sessions()

communities = moas_communities([4, 226])
network.originate(4, prefix, communities=communities)
network.originate(226, prefix, communities=communities)
network.run_to_convergence()

candidates = network.speaker(1).adj_rib_in.routes_for_prefix(prefix)
print(f"AS X sees {len(candidates)} routes for {prefix}:")
for route in candidates:
    print(f"  path {list(route.attributes.as_path.asns())} "
          f"-> origin AS {route.origin_asn}")
print(f"MOAS case visible at AS X: "
      f"{len({r.origin_asn for r in candidates}) > 1}")
print(f"alarms raised: {len(alarms)} (a valid MOAS raises none)\n")
assert len(alarms) == 0

# ---------------------------------------------------------------------------
print("Scenario 2 — ASE: private AS number substituted on egress")
print("-" * 60)

# The organisation peers with providers 701 and 1239 using private AS
# 64512.  Each provider strips the private ASN before propagating, so the
# provider itself appears as the origin.
org_asn = PRIVATE_AS_MIN
raw_path_via_701 = [701, org_asn]
raw_path_via_1239 = [1239, org_asn]
print(f"organisation peers as private AS {org_asn} "
      f"(is_private={is_private_asn(org_asn)})")
for provider, raw in ((701, raw_path_via_701), (1239, raw_path_via_1239)):
    stripped = strip_private_asns(raw)
    print(f"  provider AS {provider}: announces path {raw} "
          f"-> after ASE {stripped} (origin looks like AS {stripped[-1]})")

# From BGP's viewpoint the prefix now has two origins: 701 and 1239.
# The providers agree on the MOAS list {701, 1239}:
graph2 = ASGraph.from_edges([(1, 701), (1, 1239), (701, 1239)], transit=[701, 1239])
registry2 = PrefixOriginRegistry()
registry2.register(prefix, [701, 1239])
alarms2 = AlarmLog()
network2 = Network(graph2)
DeploymentPlan.full(graph2.asns()).apply(
    network2, GroundTruthOracle(registry2), shared_alarm_log=alarms2
)
network2.establish_sessions()
ase_list = moas_communities([701, 1239])
network2.originate(701, prefix, communities=ase_list)
network2.originate(1239, prefix, communities=ase_list)
network2.run_to_convergence()

origins = {r.origin_asn
           for r in network2.speaker(1).adj_rib_in.routes_for_prefix(prefix)}
print(f"\nAS 1 observes origins {sorted(origins)} for {prefix}")
print(f"alarms raised: {len(alarms2)} — the agreed MOAS list makes the "
      "ASE-induced MOAS verifiably valid")
assert origins == {701, 1239}
assert len(alarms2) == 0
