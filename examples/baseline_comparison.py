#!/usr/bin/env python3
"""Compare the MOAS list against the §2 related-work baselines.

One hijack scenario on the paper's 46-AS topology, defended five ways:

  1. nothing (Normal BGP)
  2. the MOAS list (detect-and-suppress, DNS on conflict only)
  3. IRR route filtering with a perfectly maintained registry
  4. IRR route filtering with a stale registry record
  5. S-BGP-style origin attestation (prefix certified)

Run:  python examples/baseline_comparison.py
"""

import random

from repro import MoasChecker, Network, Prefix, PrefixOriginRegistry
from repro.attack.placement import place_attackers, place_origins
from repro.baselines import (
    AttestationAuthority,
    IrrRegistry,
    IrrValidator,
    OriginAuthValidator,
)
from repro.core import GroundTruthOracle
from repro.topology import generate_paper_topology

PREFIX = Prefix.parse("10.2.0.0/16")

graph = generate_paper_topology(46, seed=8)
rng = random.Random(7)
origins = place_origins(graph, 1, rng)
attackers = place_attackers(graph, 5, rng, exclude=origins)
print(f"46-AS topology; genuine origin {origins}; attackers {attackers}\n")


def run(label, install):
    """Run the scenario with `install(network)` wiring the defence."""
    registry = PrefixOriginRegistry()
    registry.register(PREFIX, origins)
    net = Network(graph)
    communities = install(net, registry) or ()
    net.establish_sessions()
    for origin in origins:
        net.originate(origin, PREFIX, communities=communities)
    for attacker in attackers:
        net.speaker(attacker).originate(PREFIX)
    net.run_to_convergence()

    best = net.best_origins(PREFIX)
    remaining = [a for a in graph.asns() if a not in attackers]
    poisoned = sum(1 for a in remaining if best[a] in attackers)
    unreachable = sum(1 for a in remaining if best[a] is None)
    print(f"{label:34s} poisoned {poisoned:>2d}/{len(remaining)}   "
          f"unreachable {unreachable:>2d}")


run("normal BGP", lambda net, reg: None)

def moas(net, reg):
    oracle = GroundTruthOracle(reg)
    for asn in graph.asns():
        MoasChecker(oracle=oracle).attach(net.speaker(asn))
run("MOAS list (detect & suppress)", moas)

def irr_fresh(net, reg):
    irr = IrrRegistry()
    irr.register(PREFIX, origins)
    for asn in graph.asns():
        net.speaker(asn).add_import_validator(IrrValidator(irr))
run("IRR filtering (fresh registry)", irr_fresh)

def irr_stale(net, reg):
    irr = IrrRegistry()
    irr.make_stale(PREFIX, [9999])  # record points at a long-gone holder
    for asn in graph.asns():
        net.speaker(asn).add_import_validator(IrrValidator(irr))
run("IRR filtering (stale record)", irr_stale)

authority = AttestationAuthority()
authority.certify(PREFIX, origins)

def sbgp(net, reg):
    for asn in graph.asns():
        net.speaker(asn).add_import_validator(OriginAuthValidator(authority))
    return authority.issue(PREFIX, origins[0])
run("origin attestation (certified)", sbgp)

print("\nThe stale-IRR row is the paper's point: registry-based filtering")
print("fails closed against the *genuine* origin when records rot, while")
print("the MOAS list needs no registry and degrades to alarms, not outages.")
