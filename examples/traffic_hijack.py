#!/usr/bin/env python3
"""Traffic hijacking (the paper's Figure 3) — with and without detection.

AS 4 originates 10.2.0.0/16.  AS 52, one hop from AS X, falsely
originates the same prefix.  Under plain BGP, AS X prefers the shorter
bogus path and its packets are forwarded to AS 52 instead of the real
destination.  With MOAS checking deployed, the conflict between the
implicit MOAS lists ({4} vs {52}) raises an alarm and the bogus route is
suppressed after an origin lookup.

Run:  python examples/traffic_hijack.py
"""

from repro import (
    AlarmLog,
    ASGraph,
    DeploymentPlan,
    GroundTruthOracle,
    Network,
    Prefix,
    PrefixOriginRegistry,
)

# Figure 3: X=1 peers with Y=2, Z=3 and (fatefully) with AS 52.
# The genuine origin AS 4 is two hops from X.
graph = ASGraph.from_edges(
    [(1, 2), (1, 3), (2, 4), (3, 4), (1, 52)], transit=[2, 3]
)
prefix = Prefix.parse("10.2.0.0/16")


def run(with_detection: bool):
    registry = PrefixOriginRegistry()
    registry.register(prefix, [4])
    alarms = AlarmLog()
    network = Network(graph)
    if with_detection:
        DeploymentPlan.full(graph.asns()).apply(
            network, GroundTruthOracle(registry), shared_alarm_log=alarms
        )
    network.establish_sessions()
    network.originate(4, prefix)          # the genuine origin
    network.run_to_convergence()
    network.originate(52, prefix)         # the false origin
    network.run_to_convergence()
    return network, alarms


for with_detection in (False, True):
    label = "WITH MOAS detection" if with_detection else "Plain BGP"
    network, alarms = run(with_detection)
    best = network.speaker(1).best_route(prefix)
    path = list(best.attributes.as_path.asns())
    print(f"{label}:")
    print(f"  AS X's best route: AS path {path} "
          f"(origin AS {best.origin_asn})")
    if best.origin_asn == 52:
        print("  -> packets from AS X are delivered to the ATTACKER")
    else:
        print("  -> packets from AS X reach the genuine origin AS 4")
    print(f"  alarms raised: {len(alarms)}")
    print()

network, alarms = run(True)
assert network.speaker(1).best_origin(prefix) == 4
print("Detection restored correct forwarding at AS X.")
