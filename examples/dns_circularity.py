#!/usr/bin/env python3
"""The DNS circular dependency (§2), simulated end to end.

The paper's critique of pure DNS-based origin verification: "DNS
operations rely on the routing to function correctly, requiring BGP to
interact with the DNS for correctness checking introduces a circular
dependency."

Here the MOASRR database is hosted *inside* the routed topology (at the
same AS as the genuine origin).  Every lookup walks the querier's own
forwarding tables to the DNS server.  When the attacker wins the
cold-start race for the DNS service prefix at a router, that router loses
its verification channel — it still detects MOAS conflicts but can no
longer adjudicate them, and the victim-prefix hijack sticks there.

Run:  python examples/dns_circularity.py
"""

from repro import ASGraph, Network, Prefix, PrefixOriginRegistry
from repro.core import MoasChecker, NetworkedDnsService

VICTIM_PREFIX = Prefix.parse("10.2.0.0/16")
DNS_PREFIX = Prefix.parse("198.51.100.0/24")

# Chain 1 - 2 - 3 - 4 - 5: origin & DNS server at AS 1, attacker at AS 5.
graph = ASGraph.from_edges([(1, 2), (2, 3), (3, 4), (4, 5)], transit=[2, 3, 4])

registry = PrefixOriginRegistry()
registry.register(VICTIM_PREFIX, [1])
registry.register(DNS_PREFIX, [1])

network = Network(graph)
service = NetworkedDnsService(
    network, server_asn=1, service_prefix=DNS_PREFIX, registry=registry
)
checkers = {}
for asn in (2, 3, 4):
    checker = MoasChecker(oracle=service.oracle_for(asn))
    checker.attach(network.speaker(asn))
    checkers[asn] = checker
network.establish_sessions()

print("Cold start: the genuine DNS announcement races the attacker's...")
service.announce()                                  # AS 1 announces the DNS prefix
network.speaker(5).originate(DNS_PREFIX)            # ...and so does AS 5
network.run_to_convergence()

print("\nWho does each AS route DNS traffic to?")
for asn, origin in network.best_origins(DNS_PREFIX).items():
    note = "  <-- DNS hijacked here" if origin == 5 and asn != 5 else ""
    print(f"  AS {asn}: DNS prefix via origin AS {origin}{note}")

print("\nCan each checker still verify origins?")
for asn in (2, 3, 4):
    answer = service.oracle_for(asn).authorised_origins(VICTIM_PREFIX)
    status = f"yes -> {sorted(answer)}" if answer else "NO (lookup fails)"
    print(f"  AS {asn}: {status}")

print("\nNow the attacker hijacks the victim prefix itself...")
network.speaker(1).originate(VICTIM_PREFIX)
network.speaker(5).originate(VICTIM_PREFIX)
network.run_to_convergence()

print("\nFinal state for the victim prefix:")
for asn, origin in network.best_origins(VICTIM_PREFIX).items():
    if asn == 5:
        continue
    hijacked = origin == 5
    mark = "HIJACKED" if hijacked else "ok"
    alarms = len(checkers[asn].alarms) if asn in checkers else "-"
    print(f"  AS {asn}: origin AS {origin} [{mark}] (alarms: {alarms})")

poisoned = [a for a, o in network.best_origins(VICTIM_PREFIX).items()
            if a != 5 and o == 5]
print(f"\nASes poisoned despite running MOAS checking: {poisoned}")
print("Their checkers saw the conflict but their DNS path leads into the")
print("attacker — the circular dependency the paper warns about.  The")
print("MOAS list still detected the event (alarms fired); only the")
print("automatic adjudication was lost.")
