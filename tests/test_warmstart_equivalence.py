"""The warm-start safety property, end to end.

The contract: a warm-started run's outcome, alarm log and metric snapshot
are bit-identical (timing fields aside) to the cold run, on every
deployment kind and both attack timings — the cache is a pure
perf optimisation, never a behaviour change.  The executor integration
rides the same property: warm manifests compare equal to cold manifests
under :func:`manifests_equivalent`.
"""

import pytest

from repro.experiments.executor import (
    _dedupe_graphs,
    _GraphRef,
    execute_scenarios,
)
from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    outcomes_equivalent,
    run_hijack_scenario,
    run_hijack_scenario_instrumented,
)
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.obs.manifest import manifests_equivalent, mask_timing, read_manifest
from repro.topology.generators import generate_paper_topology
from repro.warmstart import WarmStartCache
from repro.warmstart.cache import _SHARED_CACHES

DEPLOYMENTS = [DeploymentKind.NONE, DeploymentKind.FULL, DeploymentKind.PARTIAL]
TIMINGS = [AttackTiming.SIMULTANEOUS, AttackTiming.POST_CONVERGENCE]


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


@pytest.fixture(autouse=True)
def isolated_shared_caches():
    """Keep the process-wide "mem" cache from leaking between tests."""
    saved = dict(_SHARED_CACHES)
    _SHARED_CACHES.clear()
    yield
    _SHARED_CACHES.clear()
    _SHARED_CACHES.update(saved)


def make_scenario(graph, deployment, timing, attacker_index=-1, seed=1):
    stubs = sorted(graph.stub_asns())
    return HijackScenario(
        graph=graph,
        origins=[stubs[0]],
        attackers=[stubs[attacker_index]],
        deployment=deployment,
        timing=timing,
        seed=seed,
    )


class TestBitIdentity:
    @pytest.mark.parametrize("timing", TIMINGS, ids=lambda t: t.value)
    @pytest.mark.parametrize("deployment", DEPLOYMENTS, ids=lambda d: d.value)
    def test_warm_hit_matches_cold_run(self, graph, deployment, timing):
        scenario = make_scenario(graph, deployment, timing)
        cold = run_hijack_scenario_instrumented(scenario)
        assert cold.warm_start["enabled"] is False

        cache = WarmStartCache()
        miss = run_hijack_scenario_instrumented(scenario, warm_start=cache)
        hit = run_hijack_scenario_instrumented(scenario, warm_start=cache)
        assert miss.warm_start["hit"] is False
        assert hit.warm_start["hit"] is True
        stats = cache.stats()
        assert stats["warmstart.hits"] == 1
        assert stats["warmstart.misses"] == 1
        assert stats["warmstart.puts"] == 1
        assert stats["warmstart.uncacheable"] == 0

        for run in (miss, hit):
            assert run.outcome.equivalent_to(cold.outcome)
            assert run.alarms == cold.alarms
            assert mask_timing(run.metrics) == mask_timing(cold.metrics)

    def test_plain_path_warm_hit_matches_cold(self, graph):
        scenario = make_scenario(
            graph, DeploymentKind.FULL, AttackTiming.POST_CONVERGENCE
        )
        cold = run_hijack_scenario(scenario)
        cache = WarmStartCache()
        run_hijack_scenario(scenario, warm_start=cache)
        warm = run_hijack_scenario(scenario, warm_start=cache)
        assert cache.stats()["warmstart.hits"] == 1
        assert warm.equivalent_to(cold)

    def test_baseline_is_shared_across_attacker_sets(self, graph):
        """The key excludes the attackers: scenarios differing only in the
        attack reuse one baseline (the whole point of the cache)."""
        cache = WarmStartCache()
        a = make_scenario(
            graph, DeploymentKind.FULL, AttackTiming.POST_CONVERGENCE,
            attacker_index=-1,
        )
        b = make_scenario(
            graph, DeploymentKind.FULL, AttackTiming.POST_CONVERGENCE,
            attacker_index=-2,
        )
        run_hijack_scenario(a, warm_start=cache)
        warm_b = run_hijack_scenario(b, warm_start=cache)
        stats = cache.stats()
        assert stats["warmstart.hits"] == 1
        assert stats["warmstart.puts"] == 1
        assert warm_b.equivalent_to(run_hijack_scenario(b))

    def test_partial_capable_set_is_seed_bound(self, graph):
        """PARTIAL draws the capable set from the scenario seed, so a
        different seed is a different baseline — no false sharing."""
        cache = WarmStartCache()
        a = make_scenario(
            graph, DeploymentKind.PARTIAL, AttackTiming.POST_CONVERGENCE,
            seed=1,
        )
        b = make_scenario(
            graph, DeploymentKind.PARTIAL, AttackTiming.POST_CONVERGENCE,
            seed=2,
        )
        run_hijack_scenario(a, warm_start=cache)
        run_hijack_scenario(b, warm_start=cache)
        stats = cache.stats()
        assert stats["warmstart.hits"] == 0
        assert stats["warmstart.misses"] == 2
        assert stats["warmstart.puts"] == 2


class TestGraphDedupe:
    def test_shared_graph_ships_once(self, graph):
        scenarios = [
            make_scenario(graph, DeploymentKind.FULL, timing)
            for timing in TIMINGS
        ]
        graphs, rewritten = _dedupe_graphs(scenarios)
        assert len(graphs) == 1
        digest = next(iter(graphs))
        assert graphs[digest] is graph
        for scenario in rewritten:
            assert isinstance(scenario.graph, _GraphRef)
            assert scenario.graph.digest == digest
        # The originals are untouched.
        for scenario in scenarios:
            assert scenario.graph is graph

    def test_distinct_graphs_stay_distinct(self, graph):
        other = generate_paper_topology(20, seed=9)
        scenarios = [
            make_scenario(graph, DeploymentKind.NONE, TIMINGS[0]),
            make_scenario(other, DeploymentKind.NONE, TIMINGS[0]),
        ]
        graphs, rewritten = _dedupe_graphs(scenarios)
        assert len(graphs) == 2
        assert rewritten[0].graph.digest != rewritten[1].graph.digest


class TestExecutorIntegration:
    def scenarios(self, graph):
        return [
            make_scenario(
                graph, DeploymentKind.FULL, AttackTiming.POST_CONVERGENCE,
                attacker_index=index,
            )
            for index in (-1, -2, -3, -4)
        ]

    def test_pooled_warm_matches_serial_cold(self, graph):
        scenarios = self.scenarios(graph)
        cold = execute_scenarios(scenarios, workers=1)
        warm = execute_scenarios(scenarios, workers=2, warm_start="mem")
        assert outcomes_equivalent(cold, warm)

    def test_cache_instance_cannot_cross_the_pool(self, graph):
        with pytest.raises(ValueError, match="process pool"):
            execute_scenarios(
                self.scenarios(graph), workers=2, warm_start=WarmStartCache()
            )

    def test_serial_accepts_a_cache_instance(self, graph):
        scenarios = self.scenarios(graph)
        cache = WarmStartCache()
        warm = execute_scenarios(scenarios, workers=1, warm_start=cache)
        # One baseline serves all four attacker sets.
        stats = cache.stats()
        assert stats["warmstart.puts"] == 1
        assert stats["warmstart.hits"] == len(scenarios) - 1
        assert outcomes_equivalent(warm, execute_scenarios(scenarios))

    def test_warm_manifest_equivalent_to_cold_manifest(self, graph, tmp_path):
        scenarios = self.scenarios(graph)
        cold_path = tmp_path / "cold.jsonl"
        warm_path = tmp_path / "warm.jsonl"
        execute_scenarios(scenarios, workers=1, manifest=cold_path)
        execute_scenarios(
            scenarios, workers=2, manifest=warm_path, warm_start="mem"
        )
        cold = read_manifest(cold_path)
        warm = read_manifest(warm_path)
        assert len(warm) == len(scenarios)
        assert manifests_equivalent(cold, warm)
        # The attribution is in the manifest even though comparisons mask it.
        assert any(record.warm_start.get("enabled") for record in warm)
        assert not any(record.warm_start.get("enabled") for record in cold)


class TestSweepIntegration:
    def test_run_sweep_threads_warm_start(self, graph):
        config = dict(
            graph=graph,
            attacker_fractions=(0.10,),
            n_origin_sets=1,
            n_attacker_sets=3,
            deployment=DeploymentKind.FULL,
            timing=AttackTiming.POST_CONVERGENCE,
        )
        cold = run_sweep(SweepConfig(**config), workers=1)
        cache = WarmStartCache()
        warm = run_sweep(SweepConfig(**config), workers=1, warm_start=cache)
        assert warm.points == cold.points
        assert cache.stats()["warmstart.hits"] > 0
