"""Tests for the update-feed format and its two producers."""

from __future__ import annotations

import random

import pytest

from repro.bgp.network import Network
from repro.core.moas_list import moas_communities
from repro.measurement.trace import TraceConfig, TraceGenerator
from repro.net.addresses import Prefix
from repro.stream.feed import (
    FEED_FORMAT,
    FeedError,
    FeedRecord,
    FeedWriter,
    SimulatorTap,
    feed_header_line,
    parse_feed_line,
    read_feed,
    snapshot_deltas,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


class TestFeedRecord:
    def test_unknown_op_rejected(self):
        with pytest.raises(FeedError, match="unknown feed op"):
            FeedRecord(op="X", time=0.0, prefix=P1, origin=7)

    def test_tick_carries_no_prefix(self):
        with pytest.raises(FeedError, match="no prefix"):
            FeedRecord(op="T", time=0.0, prefix=P1)

    def test_announce_needs_prefix_and_origin(self):
        with pytest.raises(FeedError, match="needs a prefix"):
            FeedRecord(op="A", time=0.0, origin=7)
        with pytest.raises(FeedError, match="needs an origin"):
            FeedRecord(op="A", time=0.0, prefix=P1)

    def test_withdraw_carries_no_moas_list(self):
        with pytest.raises(FeedError, match="no MOAS list"):
            FeedRecord(op="W", time=0.0, prefix=P1, origin=7, moas=(7,))

    def test_explicit_moas_list_cannot_be_empty(self):
        with pytest.raises(FeedError, match="cannot be empty"):
            FeedRecord(op="A", time=0.0, prefix=P1, origin=7, moas=())

    def test_effective_moas_explicit(self):
        record = FeedRecord(op="A", time=0.0, prefix=P1, origin=7, moas=(9, 7))
        assert record.effective_moas() == (7, 9)

    def test_effective_moas_implicit_singleton(self):
        record = FeedRecord(op="A", time=0.0, prefix=P1, origin=7)
        assert record.effective_moas() == (7,)

    def test_effective_moas_only_for_announces(self):
        record = FeedRecord(op="W", time=0.0, prefix=P1, origin=7)
        with pytest.raises(FeedError):
            record.effective_moas()


class TestLineFormat:
    def test_round_trip(self):
        record = FeedRecord(
            op="A", time=3.0, prefix=P1, origin=7, moas=(7, 9), peer=12
        )
        assert parse_feed_line(record.to_json_line()) == record

    def test_header_parses_to_none(self):
        assert parse_feed_line(feed_header_line()) is None

    def test_blank_line_parses_to_none(self):
        assert parse_feed_line("   \n") is None

    def test_wrong_format_rejected(self):
        with pytest.raises(FeedError, match="not a " + FEED_FORMAT):
            parse_feed_line('{"format": "something-else", "version": 1}')

    def test_wrong_version_rejected(self):
        with pytest.raises(FeedError, match="unsupported feed version"):
            parse_feed_line('{"format": "%s", "version": 99}' % FEED_FORMAT)

    def test_invalid_json_rejected(self):
        with pytest.raises(FeedError, match="not valid feed JSON"):
            parse_feed_line("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(FeedError, match="JSON object"):
            parse_feed_line("[1, 2]")

    def test_missing_op_rejected(self):
        with pytest.raises(FeedError, match="missing op"):
            parse_feed_line('{"t": 0}')

    def test_missing_time_rejected(self):
        with pytest.raises(FeedError, match="numeric t"):
            parse_feed_line('{"op": "T"}')

    def test_canonical_serialisation_is_stable(self):
        record = FeedRecord(op="A", time=1.0, prefix=P1, origin=7, moas=(9, 7))
        assert record.to_json_line() == record.to_json_line()
        assert '"m":[7,9]' in record.to_json_line()


class TestFeedWriter:
    def test_writes_header_then_records(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        with FeedWriter(path) as writer:
            writer.write(FeedRecord(op="A", time=0.0, prefix=P1, origin=7))
            writer.write(FeedRecord(op="T", time=0.0))
        lines = path.read_text().splitlines()
        assert lines[0] == feed_header_line()
        assert len(lines) == 3
        assert writer.records_written == 2

    def test_read_feed_round_trip(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        records = [
            FeedRecord(op="A", time=0.0, prefix=P1, origin=7, moas=(7, 9)),
            FeedRecord(op="W", time=1.0, prefix=P1, origin=9),
            FeedRecord(op="T", time=1.0),
        ]
        with FeedWriter(path) as writer:
            assert writer.write_all(records) == 3
        assert read_feed(path) == records

    def test_read_feed_reports_line_numbers(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text(feed_header_line() + "\n{broken\n")
        with pytest.raises(FeedError, match=":2:"):
            read_feed(path)


class TestSnapshotDeltas:
    def test_birth_announces_coordinated_full_list(self):
        feed = list(snapshot_deltas([(0, {P1: frozenset({7, 9})})]))
        announces = [r for r in feed if r.op == "A"]
        assert [(r.origin, r.moas) for r in announces] == [
            (7, (7, 9)),
            (9, (7, 9)),
        ]
        assert feed[-1].op == "T" and feed[-1].time == 0.0

    def test_added_origin_is_unilateral(self):
        snaps = [
            (0, {P1: frozenset({7})}),
            (1, {P1: frozenset({7, 9})}),
        ]
        feed = list(snapshot_deltas(snaps))
        day1 = [r for r in feed if r.time == 1.0 and r.op == "A"]
        assert [(r.origin, r.moas) for r in day1] == [(9, None)]
        assert day1[0].effective_moas() == (9,)

    def test_removed_origin_withdraws(self):
        snaps = [
            (0, {P1: frozenset({7, 9})}),
            (1, {P1: frozenset({7})}),
        ]
        feed = list(snapshot_deltas(snaps))
        withdrawals = [r for r in feed if r.op == "W"]
        assert [(r.time, r.origin) for r in withdrawals] == [(1.0, 9)]

    def test_dead_prefix_withdraws_every_origin(self):
        snaps = [(0, {P1: frozenset({7, 9})}), (1, {})]
        feed = list(snapshot_deltas(snaps))
        withdrawals = [r for r in feed if r.op == "W"]
        assert sorted(r.origin for r in withdrawals) == [7, 9]

    def test_quiet_day_still_ticks(self):
        snaps = [(0, {P1: frozenset({7})}), (1, {P1: frozenset({7})})]
        feed = list(snapshot_deltas(snaps))
        assert [r.time for r in feed if r.op == "T"] == [0.0, 1.0]
        assert sum(1 for r in feed if r.op == "A") == 1

    def test_refresh_mode_reannounces_daily(self):
        snaps = [(0, {P1: frozenset({7})}), (1, {P1: frozenset({7})})]
        feed = list(snapshot_deltas(snaps, refresh=True))
        announces = [r for r in feed if r.op == "A"]
        assert [(r.time, r.moas) for r in announces] == [(0.0, (7,)), (1.0, (7,))]

    def test_prefix_order_is_deterministic(self):
        snaps = [(0, {P2: frozenset({9}), P1: frozenset({7})})]
        feed = list(snapshot_deltas(snaps))
        assert [r.prefix for r in feed if r.op == "A"] == [P1, P2]

    def test_trace_sized_feed_is_parseable(self, tmp_path):
        config = TraceConfig(days=20, faults=())
        generator = TraceGenerator(config, random.Random(5))
        path = tmp_path / "trace.jsonl"
        with FeedWriter(path) as writer:
            written = writer.write_all(snapshot_deltas(generator.snapshots()))
        assert len(read_feed(path)) == written
        assert sum(1 for r in read_feed(path) if r.op == "T") == 20


class TestSimulatorTap:
    def _tapped_network(self, figure6_graph, observer_asn=4):
        network = Network(figure6_graph)
        records = []
        tap = SimulatorTap(records.append, clock=lambda: network.sim.now)
        tap.attach(network.speaker(observer_asn))
        network.establish_sessions()
        return network, tap, records

    def test_announce_records_origin_and_list(self, figure6_graph):
        network, tap, records = self._tapped_network(figure6_graph)
        communities = moas_communities([1, 2])
        network.originate(1, P1, communities=communities)
        network.originate(2, P1, communities=communities)
        network.run_to_convergence()
        announces = [r for r in records if r.op == "A"]
        assert {r.origin for r in announces} == {1, 2}
        assert all(r.moas == (1, 2) for r in announces)
        assert all(r.peer is not None for r in announces)

    def test_same_origin_via_second_peer_not_reannounced(self, figure6_graph):
        network, tap, records = self._tapped_network(figure6_graph)
        network.originate(1, P1)
        network.run_to_convergence()
        announces = [r for r in records if r.op == "A" and r.origin == 1]
        # AS 4 hears origin 1 from several peers; one pair, one record.
        assert len(announces) == 1
        assert announces[0].effective_moas() == (1,)

    def test_withdrawal_emits_after_last_provider_gone(self, figure6_graph):
        network, tap, records = self._tapped_network(figure6_graph)
        network.originate(1, P1)
        network.run_to_convergence()
        network.speaker(1).withdraw_origination(P1)
        network.run_to_convergence()
        # Path hunting may surface transient stale paths, so announce and
        # withdraw counts balance rather than being exactly one each.
        announces = sum(1 for r in records if r.op == "A")
        withdrawals = [r for r in records if r.op == "W"]
        assert announces == len(withdrawals) >= 1
        assert all((r.prefix, r.origin) == (P1, 1) for r in withdrawals)
        assert records[-1].op == "W"

    def test_tick_stamps_virtual_time(self, figure6_graph):
        network, tap, records = self._tapped_network(figure6_graph)
        network.originate(1, P1)
        network.run_to_convergence()
        tap.tick()
        assert records[-1].op == "T"
        assert records[-1].time == network.sim.now
        assert tap.records_emitted == len(records)

    def test_feed_from_tap_is_serialisable(self, figure6_graph, tmp_path):
        network, tap, records = self._tapped_network(figure6_graph)
        network.originate(1, P1, communities=moas_communities([1, 2]))
        network.originate(2, P1, communities=moas_communities([1, 2]))
        network.run_to_convergence()
        tap.tick()
        path = tmp_path / "tap.jsonl"
        with FeedWriter(path) as writer:
            writer.write_all(records)
        assert read_feed(path) == records
