"""Unit tests for deployment plans (§5.4)."""

import random

import pytest

from repro.bgp.network import Network
from repro.core.checker import CheckerMode
from repro.core.deployment import DeploymentPlan
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.core.alarms import AlarmLog
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


class TestConstructors:
    def test_full(self):
        plan = DeploymentPlan.full([1, 2, 3])
        assert len(plan) == 3
        assert all(plan.is_capable(a) for a in (1, 2, 3))

    def test_none(self):
        plan = DeploymentPlan.none()
        assert len(plan) == 0
        assert not plan.is_capable(1)

    def test_random_fraction_half(self):
        plan = DeploymentPlan.random_fraction(range(1, 101), 0.5, random.Random(0))
        assert len(plan) == 50

    def test_random_fraction_bounds(self):
        with pytest.raises(ValueError):
            DeploymentPlan.random_fraction([1], 1.5, random.Random(0))
        with pytest.raises(ValueError):
            DeploymentPlan.random_fraction([1], -0.1, random.Random(0))

    def test_random_fraction_deterministic(self):
        a = DeploymentPlan.random_fraction(range(100), 0.3, random.Random(5))
        b = DeploymentPlan.random_fraction(range(100), 0.3, random.Random(5))
        assert a.capable == b.capable

    def test_contains(self):
        plan = DeploymentPlan([1, 2])
        assert 1 in plan and 3 not in plan


class TestApply:
    def make_oracle(self):
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        return GroundTruthOracle(registry)

    def test_checkers_attached_to_capable_only(self, diamond_graph):
        net = Network(diamond_graph)
        plan = DeploymentPlan([1, 3])
        checkers = plan.apply(net, self.make_oracle())
        assert set(checkers) == {1, 3}

    def test_absent_ases_skipped(self, diamond_graph):
        net = Network(diamond_graph)
        plan = DeploymentPlan([1, 99])
        checkers = plan.apply(net, self.make_oracle())
        assert set(checkers) == {1}

    def test_shared_alarm_log(self, diamond_graph):
        net = Network(diamond_graph)
        log = AlarmLog()
        checkers = DeploymentPlan.full(diamond_graph.asns()).apply(
            net, self.make_oracle(), shared_alarm_log=log
        )
        assert all(c.alarms is log for c in checkers.values())

    def test_mode_propagates(self, diamond_graph):
        net = Network(diamond_graph)
        checkers = DeploymentPlan([2]).apply(
            net, None, mode=CheckerMode.ALARM_ONLY
        )
        assert checkers[2].mode is CheckerMode.ALARM_ONLY
