"""Unit and behavioural tests for the per-update DNS checking baseline."""

import pytest

from repro.baselines.dns_checking import PerUpdateDnsValidator
from repro.bgp.network import Network
from repro.core.checker import MoasChecker
from repro.core.origin_verification import (
    DnsOracle,
    GroundTruthOracle,
    PrefixOriginRegistry,
    build_moas_zone,
)
from repro.dnssub.resolver import Resolver
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


def make_dns_oracle(registry, reachable=True):
    resolver = Resolver(reachability=(None if reachable else (lambda apex: False)))
    resolver.host_zone(build_moas_zone(registry))
    return DnsOracle(resolver)


class TestPerUpdateDnsValidator:
    def run_chain(self, chain_graph, oracle):
        net = Network(chain_graph)
        validators = {}
        for asn in (2, 3, 4):
            validator = PerUpdateDnsValidator(oracle)
            net.speaker(asn).add_import_validator(validator)
            validators[asn] = validator
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()
        return net, validators

    def test_blocks_hijack_when_dns_reachable(self, chain_graph):
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        net, validators = self.run_chain(chain_graph, make_dns_oracle(registry))
        assert net.best_origins(P)[4] == 1
        assert sum(v.rejections for v in validators.values()) >= 1

    def test_fails_open_when_dns_unreachable(self, chain_graph):
        """The §2 circular dependency: with DNS unreachable, per-update
        checking degrades to no protection."""
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        oracle = make_dns_oracle(registry, reachable=False)
        net, validators = self.run_chain(chain_graph, oracle)
        assert net.best_origins(P)[4] == 5
        assert sum(v.lookup_failures for v in validators.values()) >= 1

    def test_query_load_exceeds_moas_triggered_checking(self, chain_graph):
        """The §4.4 point: MOAS-list checking queries the DNS only on
        conflicts, per-update checking queries constantly."""
        registry = PrefixOriginRegistry()
        registry.register(P, [1])

        # Arm 1: per-update DNS checking.
        per_update_oracle = GroundTruthOracle(registry)
        net = Network(chain_graph)
        for asn in (2, 3, 4):
            net.speaker(asn).add_import_validator(
                PerUpdateDnsValidator(per_update_oracle)
            )
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()

        # Arm 2: MOAS-list checking with DNS only on conflict.
        moas_oracle = GroundTruthOracle(registry)
        net2 = Network(chain_graph)
        for asn in (2, 3, 4):
            MoasChecker(oracle=moas_oracle).attach(net2.speaker(asn))
        net2.establish_sessions()
        net2.originate(1, P)
        net2.run_to_convergence()
        net2.originate(5, P)
        net2.run_to_convergence()

        assert moas_oracle.lookups < per_update_oracle.lookups
        # Same protection either way in this scenario.
        assert net.best_origins(P)[4] == net2.best_origins(P)[4] == 1

    def test_unknown_prefix_accepted(self, chain_graph):
        registry = PrefixOriginRegistry()  # empty
        net, validators = self.run_chain(
            chain_graph, GroundTruthOracle(registry)
        )
        assert net.best_origins(P)[4] == 5
