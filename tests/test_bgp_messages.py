"""Unit tests for BGP messages."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import (
    KeepaliveMessage,
    MessageType,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.net.addresses import Prefix


class TestOpen:
    def test_fields(self):
        msg = OpenMessage(1239, hold_time=90.0)
        assert msg.asn == 1239
        assert msg.hold_time == 90.0
        assert msg.type is MessageType.OPEN

    def test_invalid_asn_rejected(self):
        with pytest.raises(Exception):
            OpenMessage(0)

    def test_negative_hold_time_rejected(self):
        with pytest.raises(ValueError):
            OpenMessage(1, hold_time=-1)


class TestUpdate:
    def test_announcement(self):
        p = Prefix.parse("10.0.0.0/8")
        msg = UpdateMessage(announced=[p], attributes=PathAttributes())
        assert msg.announced == {p}
        assert not msg.is_withdrawal_only

    def test_withdrawal_only(self):
        p = Prefix.parse("10.0.0.0/8")
        msg = UpdateMessage(withdrawn=[p])
        assert msg.is_withdrawal_only
        assert msg.attributes is None

    def test_empty_update_rejected(self):
        with pytest.raises(ValueError):
            UpdateMessage()

    def test_announcement_without_attributes_rejected(self):
        with pytest.raises(ValueError):
            UpdateMessage(announced=[Prefix.parse("10.0.0.0/8")])

    def test_announce_and_withdraw_same_prefix_rejected(self):
        p = Prefix.parse("10.0.0.0/8")
        with pytest.raises(ValueError):
            UpdateMessage(announced=[p], attributes=PathAttributes(), withdrawn=[p])

    def test_mixed_update(self):
        p1 = Prefix.parse("10.0.0.0/8")
        p2 = Prefix.parse("11.0.0.0/8")
        msg = UpdateMessage(
            announced=[p1], attributes=PathAttributes(), withdrawn=[p2]
        )
        assert msg.announced == {p1}
        assert msg.withdrawn == {p2}

    def test_immutable(self):
        msg = UpdateMessage(withdrawn=[Prefix.parse("10.0.0.0/8")])
        with pytest.raises(AttributeError):
            msg.withdrawn = frozenset()


class TestOthers:
    def test_keepalive(self):
        assert KeepaliveMessage().type is MessageType.KEEPALIVE

    def test_notification(self):
        msg = NotificationMessage(NotificationMessage.CEASE, reason="bye")
        assert msg.code == NotificationMessage.CEASE
        assert msg.reason == "bye"

    def test_message_ids_unique(self):
        ids = {KeepaliveMessage().msg_id for _ in range(10)}
        assert len(ids) == 10
