"""Tests for the in-simulation route collector."""

import pytest

from repro.bgp.network import Network
from repro.core.monitor import OfflineMonitor
from repro.core.origin_verification import PrefixOriginRegistry
from repro.measurement.collector import RouteCollector
from repro.measurement.moas_observer import MoasObserver
from repro.net.addresses import Prefix
from repro.topology.inference import infer_from_table
from repro.topology.routeviews import parse_table_dump, render_table_dump

P = Prefix.parse("10.0.0.0/16")


@pytest.fixture
def collected(diamond_graph):
    net = Network(diamond_graph)
    collector = RouteCollector(net, vantages=[1, 4])
    net.establish_sessions()
    net.sim.run_to_quiescence()
    net.originate(2, P)
    net.run_to_convergence()
    return net, collector


class TestCollector:
    def test_sees_routes_from_each_vantage(self, collected):
        net, collector = collected
        table = collector.table_dump(date="2001-04-06")
        peers = {entry.peer for entry in table.entries}
        assert peers == {1, 4}
        assert all(e.prefix == P for e in table.entries)

    def test_paths_end_at_true_origin(self, collected):
        net, collector = collected
        table = collector.table_dump()
        for entry in table.entries:
            assert entry.origin_asns == frozenset({2})
            # The vantage is the first hop of the recorded path.
            assert next(iter(entry.as_path.asns())) == entry.peer

    def test_collector_never_exports(self, collected):
        net, collector = collected
        # The vantage ASes must not have learned anything from the
        # collector (it is a pure listener).
        for vantage in (1, 4):
            speaker = net.speaker(vantage)
            assert speaker.adj_rib_in.get(collector.collector_asn, P) is None

    def test_duplicate_vantage_rejected(self, collected):
        net, collector = collected
        with pytest.raises(ValueError):
            collector.add_vantage(1)

    def test_unknown_vantage_rejected(self, collected):
        net, collector = collected
        with pytest.raises(ValueError):
            collector.add_vantage(999)

    def test_collector_asn_collision_rejected(self, diamond_graph):
        net = Network(diamond_graph)
        with pytest.raises(ValueError):
            RouteCollector(net, collector_asn=1)

    def test_dump_roundtrips_through_text_format(self, collected):
        net, collector = collected
        table = collector.table_dump(date="d")
        parsed = parse_table_dump(render_table_dump(table))
        assert len(parsed) == len(table)


class TestEndToEndMeasurement:
    def test_simulated_hijack_measured_by_paper_pipeline(self, chain_graph):
        """Simulate a hijack, dump tables through the collector, and detect
        the invalid MOAS with the same observer/monitor stack the paper ran
        over the real archive.  Vantages sit at ASes 2 and 4 of the
        1-2-3-4-5 chain: AS 2 keeps the genuine route from AS 1 while AS 4
        adopts the shorter bogus route from AS 5 — so the collector sees
        both origins, exactly how real MOAS shows up at RouteViews."""
        net = Network(chain_graph)
        collector = RouteCollector(net, vantages=[2, 4])
        net.establish_sessions()
        net.sim.run_to_quiescence()

        net.originate(1, P)  # genuine origin
        net.run_to_convergence()
        day0 = collector.table_dump(date="day0")

        net.originate(5, P)  # false origin, adjacent to vantage 4
        net.run_to_convergence()
        day1 = collector.table_dump(date="day1")

        observer = MoasObserver()
        assert observer.observe_table(0, day0) == []
        cases = observer.observe_table(1, day1)
        assert len(cases) == 1
        assert cases[0].origins == frozenset({1, 5})

        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        monitor = OfflineMonitor(registry=registry)
        report = monitor.check_table(day1)
        assert report.conflicts
        assert report.conflicts[0].unauthorised_origins == frozenset({5})

    def test_topology_inference_from_collector_dump(self, diamond_graph):
        """The §5.1 pipeline applied to the collector's own output."""
        net = Network(diamond_graph)
        collector = RouteCollector(net, vantages=[1, 4])
        net.establish_sessions()
        net.sim.run_to_quiescence()
        net.originate(2, P)
        net.originate(3, Prefix.parse("11.0.0.0/16"))
        net.run_to_convergence()
        result = infer_from_table(collector.table_dump())
        # Every inferred link is a real link of the simulated topology.
        for a, b in result.graph.edges():
            assert diamond_graph.has_link(a, b) or collector.collector_asn in (a, b)