"""Tests for RFC 1997 well-known community semantics."""

import pytest

from repro.bgp.attributes import Community
from repro.bgp.network import Network
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


def well_known(value):
    return Community.from_u32(value)


class TestNoAdvertise:
    def test_no_advertise_stops_at_first_hop(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P, communities=[well_known(Community.NO_ADVERTISE)])
        net.run_to_convergence()
        # The originator's neighbour learns the route...
        assert net.speaker(2).best_origin(P) == 1
        # ...but never passes it on.
        assert net.speaker(3).best_route(P) is None

    def test_no_export_equivalent_at_as_level(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P, communities=[well_known(Community.NO_EXPORT)])
        net.run_to_convergence()
        assert net.speaker(2).best_origin(P) == 1
        assert net.speaker(3).best_route(P) is None

    def test_plain_communities_do_not_block(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P, communities=[Community(1, 42)])
        net.run_to_convergence()
        assert net.speaker(5).best_origin(P) == 1

    def test_exchange_point_use_case(self, diamond_graph):
        """The paper's §3.2: exchange-point prefixes 'should not be
        advertised into the global topology, although they might be
        announced to stub ASes for diagnostic uses' — NO_EXPORT is the
        operational tool for exactly this."""
        net = Network(diamond_graph)
        net.establish_sessions()
        exchange_prefix = Prefix.parse("192.0.2.0/24")
        net.originate(
            2, exchange_prefix, communities=[well_known(Community.NO_EXPORT)]
        )
        net.run_to_convergence()
        origins = net.best_origins(exchange_prefix)
        # Direct peers of AS 2 see it; the far corner (AS 4 via 1/3) also
        # peers directly in the diamond, so check a non-neighbour doesn't.
        assert origins[1] == 2
        assert origins[4] == 2  # direct neighbour in the diamond
        # No second-hop propagation happened at all:
        for asn in (1, 4):
            assert not net.speaker(asn).adj_rib_out.has_advertised(
                3, exchange_prefix
            )
