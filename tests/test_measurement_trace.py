"""Tests for the calibrated synthetic trace generator.

Full-scale calibration (1279 days) is exercised by the Figure 4/5
benchmarks; tests here run scaled-down traces for speed and check the
structural and statistical invariants.
"""

import random

import pytest

from repro.measurement.moas_observer import MoasObserver
from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator


def small_config(**overrides):
    defaults = dict(
        days=60,
        active_start=50,
        active_end=80,
        faults=(FaultSpike(day=30, faulty_as=8584, n_prefixes=40),),
        n_background_prefixes=200,
        n_origin_pool=300,
    )
    defaults.update(overrides)
    return TraceConfig(**defaults)


class TestConfigValidation:
    def test_zero_days_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(days=0).validate()

    def test_fault_day_outside_trace_rejected(self):
        config = small_config(faults=(FaultSpike(day=999, faulty_as=1, n_prefixes=1),))
        with pytest.raises(ValueError):
            config.validate()

    def test_background_smaller_than_victims_rejected(self):
        config = small_config(
            faults=(FaultSpike(day=1, faulty_as=1, n_prefixes=500),),
            n_background_prefixes=100,
        )
        with pytest.raises(ValueError):
            config.validate()

    def test_bad_origin_shares_rejected(self):
        with pytest.raises(ValueError):
            small_config(
                share_two_origins=0.9, share_three_origins=0.2
            ).validate()


class TestTraceShape:
    def test_day_count(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        days = [day for day, _ in gen.snapshots()]
        assert days == list(range(60))

    def test_active_population_tracks_target(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        counts = {}
        for day, snapshot in gen.snapshots():
            counts[day] = sum(1 for origins in snapshot.values() if len(origins) > 1)
        # Start near active_start, end near active_end (transients add noise).
        assert abs(counts[0] - 50) <= 10
        assert abs(counts[59] - 80) <= 15

    def test_fault_day_spikes(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        counts = {}
        for day, snapshot in gen.snapshots():
            counts[day] = sum(1 for origins in snapshot.values() if len(origins) > 1)
        baseline = counts[29]
        assert counts[30] >= baseline + 35  # the 40-prefix spike

    def test_fault_prefixes_include_faulty_as(self):
        config = small_config()
        gen = TraceGenerator(config, random.Random(0))
        for day, snapshot in gen.snapshots():
            if day == 30:
                spiked = [o for o in snapshot.values() if 8584 in o]
                assert len(spiked) == 40
                assert all(len(origins) == 2 for origins in spiked)

    def test_background_included_when_asked(self):
        gen = TraceGenerator(
            small_config(include_background=True), random.Random(0)
        )
        _, snapshot = next(gen.snapshots())
        singles = sum(1 for origins in snapshot.values() if len(origins) == 1)
        assert singles >= 150  # background minus fault-victim overlap

    def test_deterministic(self):
        a = TraceGenerator(small_config(), random.Random(9))
        b = TraceGenerator(small_config(), random.Random(9))
        snap_a = dict(a.snapshots())
        snap_b = dict(b.snapshots())
        assert snap_a == snap_b


class TestStudy:
    def test_run_study_returns_consistent_pair(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        observer, tracker = gen.run_study(duration_cutoff=60)
        assert observer.days_observed() == 60
        assert tracker.total_cases() == observer.distinct_prefixes()

    def test_duration_cutoff_respected(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        observer, tracker = gen.run_study(duration_cutoff=30)
        # The day-30 fault spike is excluded from duration stats.
        gen2 = TraceGenerator(small_config(), random.Random(0))
        _, tracker_full = gen2.run_study(duration_cutoff=60)
        assert tracker_full.total_cases() > tracker.total_cases()

    def test_fault_cases_are_one_day(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        _, tracker = gen.run_study(duration_cutoff=60)
        one_day = sum(1 for d in tracker.durations() if d == 1)
        assert one_day >= 40  # at least the fault victims

    def test_origin_set_sizes_dominated_by_two(self):
        gen = TraceGenerator(small_config(), random.Random(0))
        observer, _ = gen.run_study(duration_cutoff=60)
        dist = observer.origin_count_distribution()
        total = sum(dist.values())
        assert dist.get(2, 0) / total > 0.8
