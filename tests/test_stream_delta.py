"""Tests for delta-encoded checkpoint chains.

Two layers: the pure state algebra (``repro.stream.delta`` must fold an
engine delta into a prior snapshot and reproduce ``snapshot_state``
bit-for-bit), and the chain writer/loader (compaction, torn tails,
corruption refusal, stale-temp reaping).
"""

from __future__ import annotations

import json
import random

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.checkpoint import (
    ChainWriter,
    Checkpoint,
    CheckpointError,
    delta_path_for,
    load_chain,
    load_checkpoint,
    reap_stale_tmp,
    save_checkpoint,
)
from repro.net.addresses import Prefix
from repro.stream.delta import apply_engine_delta, apply_state_delta
from repro.stream.engine import StreamEngine
from repro.stream.feed import OP_ANNOUNCE, FeedRecord, snapshot_deltas

TRACE_CONFIG = TraceConfig(
    days=30,
    faults=(FaultSpike(day=8, faulty_as=8584, n_prefixes=20),),
    n_background_prefixes=150,
    include_background=True,
)


def trace_records(seed=3, config=TRACE_CONFIG):
    generator = TraceGenerator(config, random.Random(seed))
    return list(snapshot_deltas(generator.snapshots()))


def roundtrip(document):
    """Checkpoint documents live as canonical JSON; compare post-roundtrip."""
    return json.loads(json.dumps(document, sort_keys=True))


class TestEngineDeltaAlgebra:
    def test_delta_folds_to_the_full_snapshot(self):
        records = trace_records()
        engine = StreamEngine(window=5.0)
        state = None
        boundary = 0
        for index, record in enumerate(records):
            engine.apply(record)
            if (index + 1) % 257 == 0 or index == len(records) - 1:
                boundary += 1
                if state is None:
                    state = roundtrip(engine.snapshot_state())
                else:
                    delta = roundtrip(engine.delta_state())
                    state = apply_engine_delta(state, delta)
                engine.mark_clean()
                assert state == roundtrip(engine.snapshot_state())
        assert boundary > 5  # the fold was exercised repeatedly

    def test_delta_covers_evictions_and_deletions(self):
        records = trace_records()
        engine = StreamEngine(window=2.0)  # aggressive eviction
        base = None
        saw_eviction = False
        for index, record in enumerate(records):
            before = engine.evictions
            engine.apply(record)
            saw_eviction = saw_eviction or engine.evictions > before
            if (index + 1) % 401 == 0:
                if base is None:
                    base = roundtrip(engine.snapshot_state())
                else:
                    base = apply_engine_delta(
                        base, roundtrip(engine.delta_state())
                    )
                engine.mark_clean()
                assert base == roundtrip(engine.snapshot_state())
        assert saw_eviction  # the window actually evicted state

    def test_refresh_dirties_only_activity(self):
        """The overhead-critical asymmetry: refresh mode re-announces the
        whole live table daily, but identical routes must dirty only their
        activity stamps — never the origin maps or evidence sets."""
        engine = StreamEngine()
        announce = FeedRecord(
            op=OP_ANNOUNCE,
            time=1.0,
            prefix=Prefix.parse("10.0.0.0/24"),
            origin=65001,
            moas=(65001, 65002),
        )
        engine.apply(announce)
        engine.mark_clean()
        engine.apply(
            FeedRecord(
                op=OP_ANNOUNCE,
                time=2.0,
                prefix=Prefix.parse("10.0.0.0/24"),
                origin=65001,
                moas=(65001, 65002),
            )
        )
        delta = engine.delta_state()
        assert delta["origins"] == []
        assert delta["observed"] == []
        assert delta["activity"] == [["10.0.0.0/24", 2.0]]
        # Folding the activity-only delta still reproduces the snapshot.
        base = roundtrip(self._snapshot_at(announce))
        merged = apply_engine_delta(base, roundtrip(delta))
        assert merged == roundtrip(engine.snapshot_state())
        assert merged != base  # the stamp really moved

    @staticmethod
    def _snapshot_at(record):
        engine = StreamEngine()
        engine.apply(record)
        return engine.snapshot_state()

    def test_clean_engine_emits_empty_delta(self):
        engine = StreamEngine()
        for record in trace_records()[:500]:
            engine.apply(record)
        engine.mark_clean()
        delta = engine.delta_state()
        assert delta["origins"] == []
        assert delta["observed"] == []
        assert delta["activity"] == []
        assert delta["alarms"] == []
        assert delta["days"] == []

    def test_restore_resets_dirty_tracking(self):
        engine = StreamEngine()
        for record in trace_records()[:500]:
            engine.apply(record)
        restored = StreamEngine()
        restored.restore_state(engine.snapshot_state())
        delta = restored.delta_state()
        assert delta["origins"] == [] and delta["activity"] == []
        assert delta["observed"] == [] and delta["alarms"] == []

    def test_router_composite_delta(self):
        state = {
            "shard_count": 2,
            "window": 30.0,
            "epoch": 3.0,
            "feed_offsets": [100],
            "shards": [
                {
                    "window": 30.0,
                    "offset": 5,
                    "moas_active": 0,
                    "alarms_emitted": 0,
                    "alarm_duplicates": 0,
                    "evictions": 0,
                    "daily_counts": [[0, 0]],
                    "origins": [],
                    "observed": [],
                    "last_activity": [],
                    "alarm_counts": [],
                },
            ]
            * 2,
        }
        delta = {
            "epoch": 4.0,
            "feed_offsets": [150],
            "shards": [
                None,
                {
                    "window": 30.0,
                    "offset": 9,
                    "moas_active": 1,
                    "alarms_emitted": 0,
                    "alarm_duplicates": 0,
                    "evictions": 0,
                    "days": [[1, 1]],
                    "origins": [], "observed": [], "activity": [],
                    "alarms": [],
                },
            ],
        }
        merged = apply_state_delta(state, delta)
        assert merged["epoch"] == 4.0
        assert merged["feed_offsets"] == [150]
        assert merged["shards"][0] == state["shards"][0]  # None = unchanged
        assert merged["shards"][1]["offset"] == 9
        assert merged["shards"][1]["daily_counts"] == [[0, 0], [1, 1]]
        assert merged["shard_count"] == 2

    def test_shard_count_mismatch_raises(self):
        state = {"shards": [{}, {}], "shard_count": 2}
        with pytest.raises(ValueError, match="shards"):
            apply_state_delta(state, {"shards": [None]})


def make_checkpoint(offset, **state):
    base = {
        "window": 30.0,
        "offset": offset,
        "moas_active": 0,
        "alarms_emitted": 0,
        "alarm_duplicates": 0,
        "evictions": 0,
        "daily_counts": [],
        "origins": [],
        "observed": [],
        "last_activity": [],
        "alarm_counts": [],
    }
    base.update(state)
    return Checkpoint(
        offset=offset,
        byte_offset=offset * 10,
        alarm_lines=0,
        engine_state=base,
        alarm_bytes=0,
    )


class TestChainWriter:
    def test_full_then_deltas_replay_to_tip(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path, full_every=10)
        writer.write_full(make_checkpoint(100))
        for offset in (150, 200, 250):
            writer.append_delta(
                offset=offset,
                byte_offset=offset * 10,
                alarm_lines=0,
                alarm_bytes=0,
                delta={
                    "window": 30.0,
                    "offset": offset,
                    "moas_active": 0,
                    "alarms_emitted": 0,
                    "alarm_duplicates": 0,
                    "evictions": 0,
                    "days": [],
                    "origins": [], "observed": [], "activity": [],
                    "alarms": [],
                },
            )
        chain = load_chain(path)
        assert chain.seq == 3
        assert chain.full.offset == 100
        assert chain.checkpoint.offset == 250
        assert chain.checkpoint.byte_offset == 2500
        assert chain.torn_tail_bytes == 0
        assert load_checkpoint(path).offset == 250

    def test_delta_before_full_refused(self, tmp_path):
        writer = ChainWriter(tmp_path / "cp.json")
        with pytest.raises(CheckpointError, match="before any full"):
            writer.append_delta(
                offset=1, byte_offset=1, alarm_lines=0, alarm_bytes=0, delta={}
            )

    def test_compaction_resets_the_delta_file(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path, full_every=2)
        writer.write_full(make_checkpoint(1))
        writer.append_delta(
            offset=2, byte_offset=20, alarm_lines=0, alarm_bytes=0,
            delta={"window": 30.0, "offset": 2, "moas_active": 0,
                   "alarms_emitted": 0, "alarm_duplicates": 0, "evictions": 0,
                   "days": [], "origins": [], "observed": [], "activity": [], "alarms": []},
        )
        assert writer.wants_full()
        writer.write_full(make_checkpoint(3))
        assert delta_path_for(path).read_bytes() == b""
        chain = load_chain(path)
        assert chain.seq == 0
        assert chain.checkpoint.offset == 3

    def test_torn_tail_is_dropped_and_resumable(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path)
        writer.write_full(make_checkpoint(1))
        writer.append_delta(
            offset=2, byte_offset=20, alarm_lines=0, alarm_bytes=0,
            delta={"window": 30.0, "offset": 2, "moas_active": 0,
                   "alarms_emitted": 0, "alarm_duplicates": 0, "evictions": 0,
                   "days": [], "origins": [], "observed": [], "activity": [], "alarms": []},
        )
        deltas = delta_path_for(path)
        intact = deltas.read_bytes()
        with deltas.open("ab") as handle:
            handle.write(b'{"format":"repro-stream-che')  # crash mid-append
        chain = load_chain(path)
        assert chain.seq == 1
        assert chain.checkpoint.offset == 2
        assert chain.torn_tail_bytes > 0
        # Resuming the writer truncates the torn tail before appending.
        resumed = ChainWriter(path)
        resumed.resume(chain)
        assert deltas.read_bytes() == intact

    def test_complete_but_corrupt_line_refuses(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path)
        writer.write_full(make_checkpoint(1))
        with delta_path_for(path).open("ab") as handle:
            handle.write(b'{"not": "a delta"}\n')
        with pytest.raises(CheckpointError, match="not a"):
            load_chain(path)

    def test_base_digest_mismatch_refuses(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path)
        writer.write_full(make_checkpoint(1))
        writer.append_delta(
            offset=2, byte_offset=20, alarm_lines=0, alarm_bytes=0,
            delta={"window": 30.0, "offset": 2, "moas_active": 0,
                   "alarms_emitted": 0, "alarm_duplicates": 0, "evictions": 0,
                   "days": [], "origins": [], "observed": [], "activity": [], "alarms": []},
        )
        # A full snapshot published without resetting the chain (cannot
        # happen through ChainWriter; simulated corruption).
        save_path = tmp_path / "other.json"
        save_checkpoint(save_path, make_checkpoint(9))
        path.write_bytes(save_path.read_bytes())
        with pytest.raises(CheckpointError, match="chains from base"):
            load_chain(path)

    def test_sequence_gap_refuses(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path)
        writer.write_full(make_checkpoint(1))
        for offset in (2, 3):
            writer.append_delta(
                offset=offset, byte_offset=offset, alarm_lines=0, alarm_bytes=0,
                delta={"window": 30.0, "offset": offset, "moas_active": 0,
                       "alarms_emitted": 0, "alarm_duplicates": 0,
                       "evictions": 0, "days": [], "origins": [], "observed": [], "activity": [],
                       "alarms": []},
            )
        deltas = delta_path_for(path)
        lines = deltas.read_bytes().splitlines(keepends=True)
        deltas.write_bytes(lines[1])  # drop seq 1, keep seq 2
        with pytest.raises(CheckpointError, match="chain gap"):
            load_chain(path)

    def test_offset_rewind_refuses(self, tmp_path):
        path = tmp_path / "cp.json"
        writer = ChainWriter(path)
        writer.write_full(make_checkpoint(100))
        writer.append_delta(
            offset=50, byte_offset=1, alarm_lines=0, alarm_bytes=0,
            delta={"window": 30.0, "offset": 50, "moas_active": 0,
                   "alarms_emitted": 0, "alarm_duplicates": 0,
                   "evictions": 0, "days": [], "origins": [], "observed": [], "activity": [],
                   "alarms": []},
        )
        with pytest.raises(CheckpointError, match="rewinds offset"):
            load_chain(path)

    def test_v1_checkpoint_still_loads(self, tmp_path):
        path = tmp_path / "cp.json"
        document = {
            "format": "repro-stream-checkpoint",
            "version": 1,
            "offset": 7,
            "byte_offset": 70,
            "alarm_lines": 2,
            "engine": make_checkpoint(7).engine_state,
        }
        path.write_text(json.dumps(document, sort_keys=True))
        loaded = load_checkpoint(path)
        assert loaded.offset == 7
        assert loaded.alarm_bytes == 0  # pre-chain era: no byte accounting

    def test_reap_stale_tmp(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, make_checkpoint(1))
        (tmp_path / "cp.json.tmp").write_text("stranded")
        (tmp_path / "cp.json.deltas.tmp").write_text("stranded")
        (tmp_path / "unrelated.tmp").write_text("not ours")
        removed = reap_stale_tmp(path)
        assert removed == ["cp.json.deltas.tmp", "cp.json.tmp"]
        assert (tmp_path / "unrelated.tmp").exists()
        assert load_checkpoint(path).offset == 1
        assert reap_stale_tmp(path) == []
