"""Negative fixture: deterministic counterparts of every rule's pattern.

Linting this file (even with it configured as a spec module) must produce
zero violations.
"""

import random
from dataclasses import dataclass
from typing import FrozenSet, Tuple

rng = random.Random(42)
value = rng.random()
pick = rng.choice([1, 2, 3])

items = {3, 1, 2}

for item in sorted(items):
    print(item)

squares = [x * x for x in sorted(items)]
materialised = sorted(items)
total = sum(x for x in items)
has_two = any(x == 2 for x in items)
doubled = {x * 2 for x in items}

by_value = sorted(["b", "a"], key=str.lower)


def consume(peers: FrozenSet[int]) -> int:
    return max(peers, default=0)


@dataclass(frozen=True)
class PicklableSpec:
    """Frozen dataclasses pickle fine; R005 must not fire."""

    seed: int


class ReducibleThing:
    """Immutable slots class WITH __reduce__ — pickles fine."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("ReducibleThing is immutable")

    def __reduce__(self) -> Tuple:
        return (ReducibleThing, (self.value,))
