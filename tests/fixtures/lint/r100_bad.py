"""R100 fixture: nondeterministic values reaching determinism sinks."""

import time
import uuid


def wall_stamp():
    return time.time()


def indirect_stamp():
    base = wall_stamp()
    return base + 1.0


class Scheduler:
    def direct(self, sim):
        sim.schedule_at(time.time(), self.fire)

    def through_calls(self, sim):
        sim.schedule_at(indirect_stamp(), self.fire)

    def fire(self):
        pass


class Checkpointed:
    def snapshot_state(self):
        return {"token": uuid.uuid4().hex}

    def restore_state(self, state):
        pass
