"""R101 fixture: complete coverage via captures and explicit waivers."""


class FullyCovered:
    # The registry reference is wiring, not run state.
    _SNAPSHOT_WAIVED = frozenset({"_registry"})

    def __init__(self, registry):
        self._registry = registry
        self.count = 0
        self.items = []

    def bump(self):
        self.count += 1

    def snapshot_state(self):
        return {"count": self.count, "items": list(self.items)}

    def restore_state(self, state):
        self.count = state["count"]
        self.items = list(state["items"])
