"""R005 fixture: pickle-unsafe constructs around the process pool.

The class check only fires when this file is configured as a spec module
(the test passes ``LintConfig(spec_modules=("*/r005_bad.py",))``).
"""

from repro.experiments.executor import parallel_map  # noqa: F401


class FrozenThing:
    """Immutable slots class with no pickle support — cannot cross the pool."""

    __slots__ = ("value",)

    def __init__(self, value):
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("FrozenThing is immutable")


results = parallel_map(lambda spec: spec.run(), [])
