"""R003 fixture: iteration over bare sets in hash order."""

from typing import FrozenSet

items = {3, 1, 2}

for item in items:
    print(item)

squares = [x * x for x in items]

materialised = list(items)


def consume(peers: FrozenSet[int]) -> None:
    for peer in peers:
        print(peer)
