"""R100 cross-module fixture: the sink lives here, the source elsewhere."""

from r100_cross_helper import deterministic_stamp, wall_stamp


class Scheduler:
    def tainted(self, sim):
        sim.schedule_at(wall_stamp(), self.fire)

    def clean(self, sim):
        sim.schedule_at(deterministic_stamp(), self.fire)

    def fire(self):
        pass
