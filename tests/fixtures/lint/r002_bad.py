"""R002 fixture: wall clocks and entropy sources in simulation code."""

import os
import time
import uuid
from datetime import datetime

started = time.time()
tick = time.perf_counter()
stamp = datetime.now()
entropy = os.urandom(16)
token = uuid.uuid4()
