"""R100 fixture: deterministic and explicitly-managed values at sinks."""

import time


def virtual_delay(rng):
    return rng.uniform(0.0, 1.0)


class Scheduler:
    def seeded(self, sim, rng):
        sim.schedule_at(sim.now + virtual_delay(rng), self.fire)

    def managed_timing(self, sim):
        # The suppression is the human assertion that this wall-clock read
        # is masked downstream; it kills the taint at the source.
        started = time.perf_counter()  # repro-lint: disable=R002
        sim.record_alarm(started)

    def fire(self):
        pass


class Checkpointed:
    def __init__(self):
        self.count = 0

    def snapshot_state(self):
        return {"count": self.count}

    def restore_state(self, state):
        self.count = state["count"]
