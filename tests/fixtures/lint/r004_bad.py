"""R004 fixture: salted / address-based sort keys."""

routes = ["b", "a", "c"]

by_hash = sorted(routes, key=hash)
by_id = min(routes, key=lambda r: id(r))
routes.sort(key=lambda r: (hash(r), r))
