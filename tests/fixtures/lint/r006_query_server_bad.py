"""R006 fixture: a query server reload loop that polls with time.sleep.

The sanctioned pattern is an injectable sleeper (or, in the real server,
no loop at all — the reader reloads lazily per request); a hard-coded
``time.sleep`` poll blocks the serving thread and is untestable.
"""

import time


class PollingReloader:
    def __init__(self, index):
        self.index = index

    def watch(self):
        while True:
            self.index.reload_if_changed()
            time.sleep(0.5)
