"""R101 fixture: incomplete snapshot/restore coverage."""


class MissingCapture:
    def __init__(self):
        self.kept = 0
        self.forgotten = []

    def snapshot_state(self):
        return {"kept": self.kept}

    def restore_state(self, state):
        self.kept = state["kept"]
        self.forgotten = []


class StaleWaiver:
    _SNAPSHOT_WAIVED = frozenset({"ghost"})

    def __init__(self):
        self.value = 0

    def snapshot_state(self):
        return {"value": self.value}

    def restore_state(self, state):
        self.value = state["value"]


class OneSided:
    def __init__(self):
        self.value = 0

    def snapshot_state(self):
        return {"value": self.value}
