"""Fixture: bare route-object construction on the BGP hot path (R008).

Linted with a config whose ``hot_path_modules`` matches this file; every
flagged line builds a PathAttributes/AsPath without feeding it straight
into the intern table.
"""

from repro.bgp.attributes import AsPath, PathAttributes


def import_route(interner, origin):
    # Bare constructions: each allocates a duplicate of a route the
    # intern table almost certainly already holds.
    attributes = PathAttributes(origin=origin)
    path = AsPath(((1, 2, 3),))

    # Flagged even though it reaches the interner eventually — the rule
    # wants the construction wrapped, not laundered through a local.
    interner.attributes(attributes)

    # The blessed idiom: constructions that ARE the interner argument.
    good_attributes = interner.attributes(PathAttributes(origin=origin))
    good_path = interner.as_path(AsPath(((1, 2, 3),)))
    return attributes, path, good_attributes, good_path
