"""R100 cross-module fixture: the nondeterminism lives in this module."""

import time


def wall_stamp():
    return time.time()


def deterministic_stamp():
    return 42.0
