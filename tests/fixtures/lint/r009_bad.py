"""R009 fixture: ordering hazards that break sharded bit-identity.

Linted with a config whose ``sharded_modules`` patterns match this file.
"""


def dedupe_by_address(records):
    # id() is process-local: two shards disagree about every address.
    seen = []
    for record in records:
        if id(record) not in seen:
            seen.append(id(record))
    return seen


def deliver_directly(speaker, peer, message):
    # Hand-delivery skips the mailbox and therefore the order key.
    speaker.handle_update(peer, message)


def forward_wire(session, payload):
    session.handle_wire(payload)


def merge_mailboxes(shards):
    pending = {shard.key for shard in shards}
    # Reduction over a bare set inside a merge path: float accumulation
    # order differs run to run.
    total = sum(shard_cost(key) for key in pending)
    while pending:
        # Arbitrary-element pop inside a merge path.
        key = pending.pop()
        total += shard_cost(key)
    return total


def shard_cost(key):
    return float(key)
