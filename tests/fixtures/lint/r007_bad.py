"""Fixture: every statement here violates R007 (copy.deepcopy in library
code; state capture must use the snapshot_state/restore_state protocol)."""

import copy
from copy import deepcopy

state = {"rib": {1: ["path"]}}
cloned = copy.deepcopy(state)
cloned_again = deepcopy(state)


def checkpoint(rib: dict) -> dict:
    return copy.deepcopy(rib)
