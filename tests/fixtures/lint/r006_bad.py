"""Fixture: every statement here violates R006 (time.sleep in library code)."""

import time
from time import sleep

time.sleep(1.0)
sleep(0.1)


def poll_until_ready() -> None:
    time.sleep(0.05)
