"""Suppression fixture: every violation here carries a disable comment."""

import random
import time

value = random.random()  # repro-lint: disable=R001
started = time.perf_counter()  # repro-lint: disable=R002

items = {3, 1, 2}
for item in items:  # repro-lint: disable=R003
    print(item)

by_hash = sorted(["a", "b"], key=hash)  # repro-lint: disable=all
