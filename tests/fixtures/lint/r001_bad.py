"""R001 fixture: every statement below draws from unseeded global state."""

import random

import numpy

value = random.random()
pick = random.choice([1, 2, 3])
random.seed(42)
noise = numpy.random.normal(0.0, 1.0)
