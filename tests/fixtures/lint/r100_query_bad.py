"""R100 fixture: wall-clock values reaching the query index's durable
documents.

Segments and manifests must be pure functions of the feed — a build
timestamp poisons the digest and breaks the rebuild-is-bit-identical
invariant, so the taint pass treats the writers as determinism sinks.
"""

import time

from repro.query.segments import assemble_segment, write_manifest


def built_stamp():
    return time.time()


def cut_segment(directory, seq, start, end, events, rows):
    # Direct wall-clock argument into the segment document.
    doc = assemble_segment(seq, start, dict(end, built=time.time()), events, rows)
    return doc


def publish(directory, manifest):
    # Indirect: the taint flows through a helper before the sink sees it.
    manifest = dict(manifest, stamp=built_stamp())
    write_manifest(directory, manifest)
