"""R102 fixture batch checker: duplicates and shadows the registry."""

EVIDENCE_WINDOW = 30.0

SUPPRESS_LIMIT = 5


def lists_conflict(a, b):
    return a != b


class Checker:
    def __init__(self, window=30.0):
        self.window = window
