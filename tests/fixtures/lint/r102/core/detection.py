"""R102 fixture registry: the one true home of shared detection rules."""

EVIDENCE_WINDOW = 30.0


def lists_conflict(a, b):
    return a != b
