"""R102 fixture stream engine: drifted copies of the checker's rules."""

EVIDENCE_WINDOW = 45.0

SUPPRESS_LIMIT = 5


class Engine:
    def __init__(self, window=60.0):
        self.window = window
