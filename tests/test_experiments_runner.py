"""Tests for the hijack-scenario runner."""

import pytest

from repro.attack.models import SupersetListForgery
from repro.core.checker import CheckerMode
from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.topology import ASGraph
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestValidation:
    def test_origin_attacker_overlap_rejected(self, chain_graph):
        scenario = HijackScenario(
            graph=chain_graph, origins=[1], attackers=[1, 5]
        )
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)

    def test_unknown_as_rejected(self, chain_graph):
        scenario = HijackScenario(graph=chain_graph, origins=[99], attackers=[5])
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)

    def test_no_origin_rejected(self, chain_graph):
        scenario = HijackScenario(graph=chain_graph, origins=[], attackers=[5])
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)


class TestArms:
    def test_normal_bgp_poisoning_on_chain(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(graph=chain_graph, origins=[1], attackers=[5])
        )
        # AS 4 is strictly closer to the attacker; AS 3 ties (oldest wins).
        assert outcome.poisoned == frozenset({4})
        assert outcome.n_remaining == 4
        assert outcome.poisoned_fraction == 0.25
        assert outcome.alarms == 0

    def test_full_detection_protects_chain(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
            )
        )
        assert outcome.poisoned == frozenset()
        assert outcome.alarms >= 1
        assert outcome.routes_suppressed >= 1
        assert len(outcome.capable) == len(chain_graph)

    def test_partial_deployment_attaches_fraction(self, graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=graph,
                origins=[graph.stub_asns()[0]],
                attackers=[graph.stub_asns()[1]],
                deployment=DeploymentKind.PARTIAL,
                partial_fraction=0.5,
            )
        )
        assert len(outcome.capable) == round(0.5 * len(graph))

    def test_detection_never_worse_than_normal(self, graph):
        stubs = graph.stub_asns()
        origins, attackers = [stubs[0]], stubs[1:4]
        results = {}
        for kind in (DeploymentKind.NONE, DeploymentKind.FULL):
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph, origins=origins, attackers=attackers,
                    deployment=kind,
                )
            )
            results[kind] = len(outcome.poisoned)
        assert results[DeploymentKind.FULL] <= results[DeploymentKind.NONE]

    def test_two_origins_with_moas_list(self, graph):
        stubs = graph.stub_asns()
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=graph,
                origins=stubs[:2],
                attackers=[stubs[2]],
                deployment=DeploymentKind.FULL,
            )
        )
        # Valid MOAS must not be suppressed: alarms may fire for the
        # attacker, but origins remain reachable.
        assert outcome.poisoned_fraction <= 0.1


class TestTiming:
    def test_post_convergence_detection_is_stronger(self, graph):
        """With the prefix established first, every checker already holds
        the genuine list: detection is at least as effective as in the
        simultaneous race."""
        stubs = graph.stub_asns()
        origins, attackers = [stubs[0]], stubs[1:6]
        poisoned = {}
        for timing in (AttackTiming.SIMULTANEOUS, AttackTiming.POST_CONVERGENCE):
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph,
                    origins=origins,
                    attackers=attackers,
                    deployment=DeploymentKind.FULL,
                    timing=timing,
                )
            )
            poisoned[timing] = len(outcome.poisoned)
        assert (
            poisoned[AttackTiming.POST_CONVERGENCE]
            <= poisoned[AttackTiming.SIMULTANEOUS]
        )


class TestStrategyAndMode:
    def test_superset_forgery_also_suppressed(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
                strategy=SupersetListForgery(),
            )
        )
        assert outcome.poisoned == frozenset()

    def test_alarm_only_mode_detects_but_does_not_protect(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
                checker_mode=CheckerMode.ALARM_ONLY,
            )
        )
        assert outcome.alarms >= 1
        assert outcome.poisoned == frozenset({4})

    def test_determinism(self, graph):
        stubs = graph.stub_asns()
        scenario = HijackScenario(
            graph=graph, origins=[stubs[0]], attackers=stubs[1:3],
            deployment=DeploymentKind.FULL,
        )
        a = run_hijack_scenario(scenario)
        b = run_hijack_scenario(scenario)
        assert a.poisoned == b.poisoned
        assert a.alarms == b.alarms
