"""Tests for the hijack-scenario runner."""

import pytest

from repro.attack.models import SupersetListForgery
from repro.core.checker import CheckerMode
from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.topology import ASGraph
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestValidation:
    def test_origin_attacker_overlap_rejected(self, chain_graph):
        scenario = HijackScenario(
            graph=chain_graph, origins=[1], attackers=[1, 5]
        )
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)

    def test_unknown_as_rejected(self, chain_graph):
        scenario = HijackScenario(graph=chain_graph, origins=[99], attackers=[5])
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)

    def test_no_origin_rejected(self, chain_graph):
        scenario = HijackScenario(graph=chain_graph, origins=[], attackers=[5])
        with pytest.raises(ValueError):
            run_hijack_scenario(scenario)


class TestArms:
    def test_normal_bgp_poisoning_on_chain(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(graph=chain_graph, origins=[1], attackers=[5])
        )
        # AS 4 is strictly closer to the attacker; AS 3 ties (oldest wins).
        assert outcome.poisoned == frozenset({4})
        assert outcome.n_remaining == 4
        assert outcome.poisoned_fraction == 0.25
        assert outcome.alarms == 0

    def test_full_detection_protects_chain(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
            )
        )
        assert outcome.poisoned == frozenset()
        assert outcome.alarms >= 1
        assert outcome.routes_suppressed >= 1
        assert len(outcome.capable) == len(chain_graph)

    def test_partial_deployment_attaches_fraction(self, graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=graph,
                origins=[graph.stub_asns()[0]],
                attackers=[graph.stub_asns()[1]],
                deployment=DeploymentKind.PARTIAL,
                partial_fraction=0.5,
            )
        )
        assert len(outcome.capable) == round(0.5 * len(graph))

    def test_detection_never_worse_than_normal(self, graph):
        stubs = graph.stub_asns()
        origins, attackers = [stubs[0]], stubs[1:4]
        results = {}
        for kind in (DeploymentKind.NONE, DeploymentKind.FULL):
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph, origins=origins, attackers=attackers,
                    deployment=kind,
                )
            )
            results[kind] = len(outcome.poisoned)
        assert results[DeploymentKind.FULL] <= results[DeploymentKind.NONE]

    def test_two_origins_with_moas_list(self, graph):
        stubs = graph.stub_asns()
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=graph,
                origins=stubs[:2],
                attackers=[stubs[2]],
                deployment=DeploymentKind.FULL,
            )
        )
        # Valid MOAS must not be suppressed: alarms may fire for the
        # attacker, but origins remain reachable.
        assert outcome.poisoned_fraction <= 0.1


class TestTiming:
    def test_post_convergence_detection_is_stronger(self, graph):
        """With the prefix established first, every checker already holds
        the genuine list: detection is at least as effective as in the
        simultaneous race."""
        stubs = graph.stub_asns()
        origins, attackers = [stubs[0]], stubs[1:6]
        poisoned = {}
        for timing in (AttackTiming.SIMULTANEOUS, AttackTiming.POST_CONVERGENCE):
            outcome = run_hijack_scenario(
                HijackScenario(
                    graph=graph,
                    origins=origins,
                    attackers=attackers,
                    deployment=DeploymentKind.FULL,
                    timing=timing,
                )
            )
            poisoned[timing] = len(outcome.poisoned)
        assert (
            poisoned[AttackTiming.POST_CONVERGENCE]
            <= poisoned[AttackTiming.SIMULTANEOUS]
        )


class TestStrategyAndMode:
    def test_superset_forgery_also_suppressed(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
                strategy=SupersetListForgery(),
            )
        )
        assert outcome.poisoned == frozenset()

    def test_alarm_only_mode_detects_but_does_not_protect(self, chain_graph):
        outcome = run_hijack_scenario(
            HijackScenario(
                graph=chain_graph,
                origins=[1],
                attackers=[5],
                deployment=DeploymentKind.FULL,
                checker_mode=CheckerMode.ALARM_ONLY,
            )
        )
        assert outcome.alarms >= 1
        assert outcome.poisoned == frozenset({4})

    def test_determinism(self, graph):
        stubs = graph.stub_asns()
        scenario = HijackScenario(
            graph=graph, origins=[stubs[0]], attackers=stubs[1:3],
            deployment=DeploymentKind.FULL,
        )
        a = run_hijack_scenario(scenario)
        b = run_hijack_scenario(scenario)
        assert a.poisoned == b.poisoned
        assert a.alarms == b.alarms


class TestOutcomeHelpers:
    def _outcome(self, **overrides):
        from repro.experiments.runner import HijackOutcome

        base = dict(poisoned=frozenset({4}), n_remaining=4, alarms=2,
                    routes_suppressed=1, capable=frozenset({2, 3}),
                    events_processed=100, updates_sent=50, wall_seconds=0.7)
        base.update(overrides)
        return HijackOutcome(**base)

    def test_masked_timing_zeroes_wall_seconds_only(self):
        masked = self._outcome().masked_timing()
        assert masked.wall_seconds == 0.0
        assert masked.events_processed == 100
        assert masked.poisoned == frozenset({4})

    def test_equivalent_to_ignores_wall_seconds(self):
        assert self._outcome(wall_seconds=0.1).equivalent_to(
            self._outcome(wall_seconds=9.9)
        )

    def test_equivalent_to_sees_real_differences(self):
        assert not self._outcome(alarms=2).equivalent_to(
            self._outcome(alarms=3)
        )

    def test_outcomes_equivalent_elementwise(self):
        from repro.experiments.runner import outcomes_equivalent

        a = [self._outcome(wall_seconds=0.1)]
        b = [self._outcome(wall_seconds=2.0)]
        assert outcomes_equivalent(a, b)
        assert not outcomes_equivalent(a, [])
        assert not outcomes_equivalent(a, [self._outcome(alarms=9)])

    def test_to_dict_is_json_safe(self):
        import json

        data = self._outcome().to_dict()
        assert data["poisoned"] == [4]
        assert data["poisoned_fraction"] == 0.25
        assert data["capable_count"] == 2
        assert json.loads(json.dumps(data)) == data


class TestInstrumentedRun:
    def _scenario(self, graph):
        stubs = graph.stub_asns()
        return HijackScenario(
            graph=graph, origins=[stubs[0]], attackers=stubs[1:3],
            deployment=DeploymentKind.FULL,
        )

    def test_outcome_matches_plain_run(self, graph):
        from repro.experiments.runner import run_hijack_scenario_instrumented

        scenario = self._scenario(graph)
        plain = run_hijack_scenario(scenario)
        run = run_hijack_scenario_instrumented(scenario)
        assert run.outcome.equivalent_to(plain)

    def test_metrics_agree_with_outcome_counters(self, graph):
        from repro.experiments.runner import run_hijack_scenario_instrumented

        run = run_hijack_scenario_instrumented(self._scenario(graph))
        assert run.metrics["sim.events"] == run.outcome.events_processed
        assert run.metrics["bgp.updates_sent"] == run.outcome.updates_sent
        assert run.metrics["checker.alarms"] == run.outcome.alarms
        assert run.metrics["bgp.updates_received"] > 0
        assert run.metrics["bgp.decision_runs"] > 0
        assert run.metrics["sim.queue_depth"]["max"] >= 1.0

    def test_spans_cover_the_phases(self, graph):
        from repro.experiments.runner import run_hijack_scenario_instrumented

        run = run_hijack_scenario_instrumented(self._scenario(graph))
        names = [span["name"] for span in run.spans]
        assert "topology_build" in names
        assert "fault_injection" in names
        assert "recovery_convergence" in names
        assert "measurement" in names
        for span in run.spans:
            assert span["sim_end"] >= span["sim_start"]

    def test_worker_is_this_process(self, graph):
        import os

        from repro.experiments.runner import run_hijack_scenario_instrumented

        run = run_hijack_scenario_instrumented(self._scenario(graph))
        assert run.worker == os.getpid()
