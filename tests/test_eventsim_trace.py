"""Unit tests for the trace recorder."""

from repro.eventsim import TraceRecorder


class TestTraceRecorder:
    def test_records_accumulate(self):
        trace = TraceRecorder()
        trace.record(1.0, "a", x=1)
        trace.record(2.0, "b", y=2)
        assert len(trace) == 2

    def test_by_category(self):
        trace = TraceRecorder()
        trace.record(1.0, "a")
        trace.record(2.0, "b")
        trace.record(3.0, "a")
        assert [r.time for r in trace.by_category("a")] == [1.0, 3.0]

    def test_count(self):
        trace = TraceRecorder()
        for _ in range(3):
            trace.record(0.0, "x")
        assert trace.count("x") == 3
        assert trace.count("missing") == 0

    def test_category_filter(self):
        trace = TraceRecorder(categories={"keep"})
        trace.record(0.0, "keep")
        trace.record(0.0, "drop")
        assert len(trace) == 1
        assert trace.count("drop") == 0

    def test_detail_preserved(self):
        trace = TraceRecorder()
        trace.record(0.0, "event", prefix="10.0.0.0/8", asn=42)
        record = trace.by_category("event")[0]
        assert record.detail == {"prefix": "10.0.0.0/8", "asn": 42}

    def test_listener_invoked(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(seen.append)
        trace.record(1.0, "a")
        assert len(seen) == 1
        assert seen[0].category == "a"

    def test_listener_not_invoked_for_filtered(self):
        trace = TraceRecorder(categories={"keep"})
        seen = []
        trace.add_listener(seen.append)
        trace.record(0.0, "drop")
        assert seen == []

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "a")
        trace.clear()
        assert len(trace) == 0

    def test_iteration_in_order(self):
        trace = TraceRecorder()
        for t in (1.0, 2.0, 3.0):
            trace.record(t, "tick")
        assert [r.time for r in trace] == [1.0, 2.0, 3.0]
