"""Behavioural tests for the MOAS consistency checker (§4.2)."""

import pytest

from repro.bgp.network import Network
from repro.core.alarms import AlarmKind, AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


def build(figure6_graph, capable, mode=CheckerMode.DETECT_AND_SUPPRESS,
          authorised=(1, 2)):
    """Network over the Figure 6 graph with checkers on ``capable`` ASes."""
    registry = PrefixOriginRegistry()
    registry.register(P, list(authorised))
    oracle = GroundTruthOracle(registry)
    log = AlarmLog()
    net = Network(figure6_graph)
    checkers = {}
    for asn in capable:
        checker = MoasChecker(mode=mode, oracle=oracle, alarm_log=log)
        checker.attach(net.speaker(asn))
        checkers[asn] = checker
    net.establish_sessions()
    return net, checkers, log, oracle


class TestConstruction:
    def test_suppress_mode_requires_oracle(self):
        with pytest.raises(ValueError):
            MoasChecker(mode=CheckerMode.DETECT_AND_SUPPRESS, oracle=None)

    def test_alarm_only_needs_no_oracle(self):
        MoasChecker(mode=CheckerMode.ALARM_ONLY)

    def test_double_attach_rejected(self, figure6_graph):
        net = Network(figure6_graph)
        checker = MoasChecker(mode=CheckerMode.ALARM_ONLY)
        checker.attach(net.speaker(4))
        with pytest.raises(RuntimeError):
            checker.attach(net.speaker(3))

    def test_unattached_speaker_access_rejected(self):
        checker = MoasChecker(mode=CheckerMode.ALARM_ONLY)
        with pytest.raises(RuntimeError):
            checker.speaker


class TestValidMoas:
    def test_consistent_lists_raise_no_alarm(self, figure6_graph):
        net, checkers, log, _ = build(figure6_graph, capable=[3, 4, 5])
        communities = moas_communities([1, 2])
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.run_to_convergence()
        assert len(log) == 0
        assert all(v in (1, 2) for v in net.best_origins(P).values())

    def test_single_origin_no_list_no_alarm(self, figure6_graph):
        net, _, log, _ = build(figure6_graph, capable=[3, 4, 5], authorised=(1,))
        net.originate(1, P)
        net.run_to_convergence()
        assert len(log) == 0


class TestFalseOriginDetection:
    def test_false_origin_raises_alarm_and_is_suppressed(self, figure6_graph):
        net, checkers, log, _ = build(figure6_graph, capable=[3, 4])
        communities = moas_communities([1, 2])
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.run_to_convergence()
        net.originate(5, P)  # AS 5 falsely originates with no list
        net.run_to_convergence()
        assert log.count(AlarmKind.INCONSISTENT_LISTS) >= 1
        assert log.suspects() == frozenset({5})
        # No capable AS adopts the false route.
        origins = net.best_origins(P)
        assert origins[3] in (1, 2)
        assert origins[4] in (1, 2)

    def test_false_route_arriving_first_is_retroactively_removed(
        self, figure6_graph
    ):
        """The attacker announces before the genuine origins; the later
        genuine announcement reveals the conflict and the stale bogus route
        is swept out of the RIBs."""
        net, checkers, log, _ = build(figure6_graph, capable=[3, 4])
        net.originate(5, P)
        net.run_to_convergence()
        assert net.best_origins(P)[4] == 5  # bogus route initially wins
        communities = moas_communities([1, 2])
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.run_to_convergence()
        origins = net.best_origins(P)
        assert origins[3] in (1, 2)
        assert origins[4] in (1, 2)
        assert sum(c.routes_suppressed for c in checkers.values()) >= 1

    def test_forged_superset_list_detected(self, figure6_graph):
        """§4.1: the attacker attaches {1, 2, 5}; the superset disagrees
        with the genuine {1, 2} and the conflict is caught."""
        net, _, log, _ = build(figure6_graph, capable=[3, 4])
        communities = moas_communities([1, 2])
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.originate(5, P, communities=moas_communities([1, 2, 5]))
        net.run_to_convergence()
        assert log.count(AlarmKind.INCONSISTENT_LISTS) >= 1
        assert net.best_origins(P)[4] in (1, 2)

    def test_exact_copied_list_rejected_without_conflict(self, figure6_graph):
        """An attacker copying the genuine list verbatim produces an
        announcement whose own origin is not in its list — rejected by a
        single router with no second view needed."""
        net, _, log, _ = build(figure6_graph, capable=[4])
        net.originate(5, P, communities=moas_communities([1, 2]))
        net.run_to_convergence()
        assert log.count(AlarmKind.ORIGIN_NOT_IN_OWN_LIST) >= 1
        assert net.best_origins(P)[4] is None

    def test_dropped_community_raises_false_alarm(self, figure6_graph):
        """§4.3: if some announcements lose the community attribute, the
        implicit footnote-3 list conflicts with the explicit one — a false
        alarm, but never a silently accepted invalid route."""
        net, _, log, _ = build(figure6_graph, capable=[3, 4])
        net.originate(1, P, communities=moas_communities([1, 2]))
        net.originate(2, P)  # AS 2 announces without the list
        net.run_to_convergence()
        assert log.count(AlarmKind.INCONSISTENT_LISTS) >= 1
        # Both origins are genuinely authorised, so nothing is suppressed
        # by the oracle — the alarm flags the inconsistency for operators.
        assert all(v in (1, 2) for v in net.best_origins(P).values())


class TestAlarmOnlyMode:
    def test_alarms_without_suppression(self, chain_graph):
        """On the 1-2-3-4-5 chain with origin 1 and attacker 5, AS 4 is
        strictly closer to the attacker.  An alarm-only checker sees the
        conflict but lets the false route through."""
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        log = AlarmLog()
        net = Network(chain_graph)
        checkers = {}
        for asn in (3, 4):
            checker = MoasChecker(mode=CheckerMode.ALARM_ONLY, alarm_log=log)
            checker.attach(net.speaker(asn))
            checkers[asn] = checker
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()
        assert log.count(AlarmKind.INCONSISTENT_LISTS) >= 1
        assert sum(c.routes_suppressed for c in checkers.values()) == 0
        # AS 4, unprotected, adopts the shorter false route.
        assert net.best_origins(P)[4] == 5

    def test_suppression_mode_protects_same_scenario(self, chain_graph):
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        oracle = GroundTruthOracle(registry)
        net = Network(chain_graph)
        for asn in (3, 4):
            MoasChecker(oracle=oracle).attach(net.speaker(asn))
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()
        assert net.best_origins(P)[4] == 1


class TestOracleInteraction:
    def test_oracle_consulted_only_on_conflict(self, figure6_graph):
        net, _, log, oracle = build(figure6_graph, capable=[3, 4, 5])
        communities = moas_communities([1, 2])
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.run_to_convergence()
        assert oracle.lookups == 0  # no conflict, no DNS traffic (§4.4)
        net.originate(5, P)
        net.run_to_convergence()
        assert oracle.lookups > 0

    def test_unknown_prefix_cannot_be_adjudicated(self, figure6_graph):
        """If the oracle has no record, the checker alarms but does not
        suppress (nothing to adjudicate against)."""
        registry = PrefixOriginRegistry()  # empty: no bindings
        oracle = GroundTruthOracle(registry)
        log = AlarmLog()
        net = Network(figure6_graph)
        checker = MoasChecker(oracle=oracle, alarm_log=log)
        checker.attach(net.speaker(4))
        net.establish_sessions()
        net.originate(1, P, communities=moas_communities([1, 2]))
        net.originate(5, P)
        net.run_to_convergence()
        assert log.count(AlarmKind.INCONSISTENT_LISTS) >= 1
        assert log.count(AlarmKind.UNAUTHORISED_ORIGIN) == 0

    def test_checks_counted(self, figure6_graph):
        net, checkers, _, _ = build(figure6_graph, capable=[4])
        net.originate(1, P, communities=moas_communities([1, 2]))
        net.run_to_convergence()
        assert checkers[4].checks > 0
