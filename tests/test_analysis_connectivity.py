"""Tests for the disjoint-path survivability analysis."""

import pytest

from repro.analysis import (
    blocking_probability,
    disjoint_path_profile,
    predicted_cutoff,
    profile_topology,
)
from repro.topology import ASGraph
from repro.topology.generators import generate_paper_topology


class TestDisjointPaths:
    def test_chain_has_one_path(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        assert profile.disjoint_paths == 1
        assert profile.interior_lengths == (3,)  # 2, 3, 4 between

    def test_diamond_has_two_paths(self, diamond_graph):
        profile = disjoint_path_profile(diamond_graph, 1, 4)
        assert profile.disjoint_paths == 2
        assert profile.interior_lengths == (1, 1)

    def test_direct_neighbour_unblockable(self, diamond_graph):
        profile = disjoint_path_profile(diamond_graph, 1, 2)
        assert 0 in profile.interior_lengths  # the direct edge

    def test_origin_itself(self, diamond_graph):
        profile = disjoint_path_profile(diamond_graph, 1, 1)
        assert profile.disjoint_paths == 0

    def test_min_cut_equals_menger(self):
        # Three internally disjoint 1->5 paths.
        graph = ASGraph.from_edges(
            [(1, 2), (2, 5), (1, 3), (3, 5), (1, 4), (4, 5)]
        )
        profile = disjoint_path_profile(graph, 1, 5)
        assert profile.min_cut == 3


class TestBlockingProbability:
    def test_direct_edge_never_blocked(self, diamond_graph):
        profile = disjoint_path_profile(diamond_graph, 1, 2)
        assert blocking_probability(profile, 0.9) == 0.0

    def test_single_path_probability(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        # One path with 3 interior nodes: blocked unless all 3 are clean.
        f = 0.3
        assert blocking_probability(profile, f) == pytest.approx(
            1 - (1 - f) ** 3
        )

    def test_more_paths_lower_probability(self, chain_graph, diamond_graph):
        chain_p = disjoint_path_profile(chain_graph, 1, 5)
        diamond_p = disjoint_path_profile(diamond_graph, 1, 4)
        f = 0.3
        assert blocking_probability(diamond_p, f) < blocking_probability(
            chain_p, f
        )

    def test_zero_fraction(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        assert blocking_probability(profile, 0.0) == 0.0

    def test_full_fraction(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        assert blocking_probability(profile, 1.0) == 1.0

    def test_bad_fraction(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        with pytest.raises(ValueError):
            blocking_probability(profile, 1.5)

    def test_monotone_in_fraction(self, chain_graph):
        profile = disjoint_path_profile(chain_graph, 1, 5)
        values = [blocking_probability(profile, f / 10) for f in range(11)]
        assert values == sorted(values)


class TestTopologyPrediction:
    def test_profile_topology_covers_all(self, diamond_graph):
        profiles = profile_topology(diamond_graph, 1)
        assert set(profiles) == {2, 3, 4}

    def test_richer_topology_predicts_lower_cutoff(self):
        """The paper's Experiment 2 phenomenon, analytically: the denser
        63-AS sample has a lower predicted cut-off than the sparse 25-AS
        one at equal attacker density."""
        small = generate_paper_topology(25, seed=8)
        large = generate_paper_topology(63, seed=8)
        f = 0.3
        small_pred = predicted_cutoff(small, small.stub_asns()[0], f)
        large_pred = predicted_cutoff(large, large.stub_asns()[0], f)
        assert large_pred < small_pred

    def test_prediction_bounds_sim_residual_direction(self):
        """The analytic estimate and the simulated detection residual
        agree in direction across attacker densities."""
        graph = generate_paper_topology(25, seed=8)
        origin = graph.stub_asns()[0]
        predictions = [
            predicted_cutoff(graph, origin, f) for f in (0.1, 0.2, 0.3)
        ]
        assert predictions == sorted(predictions)  # grows with density
