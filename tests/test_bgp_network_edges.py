"""Edge-case tests for the network layer and speaker configuration."""

import pytest

from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.net.addresses import Prefix
from repro.topology import ASGraph

P = Prefix.parse("10.0.0.0/16")


class TestSpeakerConfig:
    def test_negative_mrai_rejected(self):
        with pytest.raises(ValueError):
            SpeakerConfig(mrai=-1.0)

    def test_defaults(self):
        config = SpeakerConfig()
        assert config.mrai == 0.0
        assert config.hold_time == 0.0
        assert config.prefer_oldest is True


class TestNetworkEdges:
    def test_run_for_negative_rejected(self, diamond_graph):
        net = Network(diamond_graph)
        with pytest.raises(ValueError):
            net.run_for(-1.0)

    def test_run_for_zero_is_noop(self, diamond_graph):
        net = Network(diamond_graph)
        assert net.run_for(0.0) == 0

    def test_custom_link_delay(self, chain_graph):
        net = Network(chain_graph, link_delay=1.0)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        # 4 hops at 1s each: convergence time reflects the delay.
        assert net.sim.now >= 4.0

    def test_establish_detects_failed_links(self, diamond_graph):
        net = Network(diamond_graph)
        net.link(1, 2).fail()
        with pytest.raises(RuntimeError):
            net.establish_sessions()

    def test_single_edge_graph(self):
        graph = ASGraph.from_edges([(1, 2)])
        net = Network(graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        assert net.best_origins(P) == {1: 1, 2: 1}

    def test_two_prefixes_independent(self, diamond_graph):
        q = Prefix.parse("11.0.0.0/16")
        net = Network(diamond_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.originate(4, q)
        net.run_to_convergence()
        assert all(v == 1 for v in net.best_origins(P).values())
        assert all(v == 4 for v in net.best_origins(q).values())

    def test_same_prefix_from_two_speakers_is_moas(self, diamond_graph):
        net = Network(diamond_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.originate(4, P)
        net.run_to_convergence()
        origins = set(net.best_origins(P).values())
        assert origins <= {1, 4}
        assert len(origins) == 2  # each origin keeps its own route

    def test_seed_changes_nothing_for_deterministic_workload(self, diamond_graph):
        results = []
        for seed in (1, 2):
            net = Network(diamond_graph, seed=seed)
            net.establish_sessions()
            net.originate(1, P)
            net.run_to_convergence()
            results.append(net.best_origins(P))
        # No randomness is consumed in this workload: identical outcomes.
        assert results[0] == results[1]
