"""Unit tests for the BGP speaker."""

import pytest

from repro.bgp.attributes import AsPath, Community, PathAttributes
from repro.bgp.errors import SessionError
from repro.bgp.messages import UpdateMessage
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.net.addresses import Prefix
from repro.net.link import Link

P = Prefix.parse("10.0.0.0/16")


def linked_speakers(sim, *asns, config=None):
    """A chain of speakers: consecutive ASNs peered."""
    speakers = {asn: BGPSpeaker(sim, asn, config=config) for asn in asns}
    for left, right in zip(asns, asns[1:]):
        link = Link(sim, left, right)
        speakers[left].add_peer(right, link)
        speakers[right].add_peer(left, link)
        speakers[left].start_session(right)
    sim.run()
    return speakers


class TestPeering:
    def test_self_peering_rejected(self, sim):
        speaker = BGPSpeaker(sim, 1)
        with pytest.raises(SessionError):
            speaker.add_peer(1, Link(sim, 1, 2))

    def test_duplicate_peer_rejected(self, sim):
        speaker = BGPSpeaker(sim, 1)
        speaker.add_peer(2, Link(sim, 1, 2))
        with pytest.raises(SessionError):
            speaker.add_peer(2, Link(sim, 1, 2))

    def test_established_peers_sorted(self, sim):
        speakers = linked_speakers(sim, 2, 1, 3)
        assert speakers[1].established_peers == [2, 3]


class TestOrigination:
    def test_originate_installs_locally(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        assert speakers[1].best_origin(P) == 1
        assert speakers[1].originated_prefixes == [P]

    def test_neighbor_sees_origin_path(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        best = speakers[2].best_route(P)
        assert list(best.attributes.as_path.asns()) == [1]
        assert speakers[2].best_origin(P) == 1

    def test_path_grows_along_chain(self, sim):
        speakers = linked_speakers(sim, 1, 2, 3, 4)
        speakers[1].originate(P)
        sim.run()
        best = speakers[4].best_route(P)
        assert list(best.attributes.as_path.asns()) == [3, 2, 1]

    def test_communities_propagate_transitively(self, sim):
        speakers = linked_speakers(sim, 1, 2, 3)
        communities = [Community(1, 255), Community(9, 255)]
        speakers[1].originate(P, communities=communities)
        sim.run()
        assert speakers[3].best_route(P).attributes.communities == set(communities)

    def test_withdraw_origination_propagates(self, sim):
        speakers = linked_speakers(sim, 1, 2, 3)
        speakers[1].originate(P)
        sim.run()
        speakers[1].withdraw_origination(P)
        sim.run()
        assert speakers[3].best_route(P) is None

    def test_withdraw_unoriginated_rejected(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        with pytest.raises(ValueError):
            speakers[1].withdraw_origination(P)

    def test_local_pref_not_exported(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        received = speakers[2].best_route(P)
        assert received.attributes.local_pref == PathAttributes.DEFAULT_LOCAL_PREF


class TestLoopDetection:
    def test_own_asn_in_path_rejected(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        attrs = PathAttributes(as_path=AsPath.from_asns([1, 7]))
        update = UpdateMessage(announced={P}, attributes=attrs)
        # Deliver a forged update from 2 containing 1's own ASN.
        speakers[1].handle_update(2, update)
        assert speakers[1].loops_detected == 1
        assert speakers[1].best_route(P) is None


class TestValidators:
    def test_validator_rejects_route(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[2].add_import_validator(lambda peer, prefix, attrs: False)
        speakers[1].originate(P)
        sim.run()
        assert speakers[2].best_route(P) is None
        assert speakers[2].routes_rejected_by_validator == 1

    def test_rejected_replacement_clears_old_route(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        # Accept the first announcement, reject anything after.
        state = {"accepted": 0}

        def validator(peer, prefix, attrs):
            state["accepted"] += 1
            return state["accepted"] == 1

        speakers[2].add_import_validator(validator)
        speakers[1].originate(P)
        sim.run()
        assert speakers[2].best_route(P) is not None
        # Re-announce with different attributes: rejected, and the old
        # (stale) route must not survive.
        speakers[1].withdraw_origination(P)
        sim.run()
        speakers[1].originate(P, communities=[Community(1, 1)])
        sim.run()
        assert speakers[2].best_route(P) is None

    def test_invalidate_route(self, sim):
        speakers = linked_speakers(sim, 1, 2, 3)
        speakers[1].originate(P)
        sim.run()
        assert speakers[3].best_route(P) is not None
        assert speakers[2].invalidate_route(1, P)
        sim.run()
        assert speakers[2].best_route(P) is None
        assert speakers[3].best_route(P) is None

    def test_invalidate_missing_route_returns_false(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        assert not speakers[2].invalidate_route(1, P)

    def test_loc_rib_listener_sees_changes(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        changes = []
        speakers[2].add_loc_rib_listener(
            lambda prefix, new, old: changes.append((prefix, new, old))
        )
        speakers[1].originate(P)
        sim.run()
        assert len(changes) == 1
        assert changes[0][0] == P
        assert changes[0][1] is not None and changes[0][2] is None


class TestPropagationHygiene:
    def test_no_announcement_back_to_learned_peer(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        # 2 must not have advertised the prefix back to 1.
        assert not speakers[2].adj_rib_out.has_advertised(1, P)

    def test_duplicate_announcements_suppressed(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        sent_before = speakers[1].updates_sent
        # Re-running the decision with no change must not re-announce.
        speakers[1]._run_decision(P)
        sim.run()
        assert speakers[1].updates_sent == sent_before

    def test_full_table_advertised_to_late_peer(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        # Wire a third speaker late; it must receive the existing table.
        late = BGPSpeaker(sim, 3)
        link = Link(sim, 2, 3)
        speakers[2].add_peer(3, link)
        late.add_peer(2, link)
        late.start_session(2)
        sim.run()
        assert late.best_origin(P) == 1


class TestMrai:
    def test_mrai_delays_subsequent_updates(self, sim):
        config = SpeakerConfig(mrai=10.0)
        speakers = linked_speakers(sim, 1, 2, config=config)
        p2 = Prefix.parse("11.0.0.0/16")
        speakers[1].originate(P)
        sim.run(until=1.0)
        assert speakers[2].best_route(P) is not None
        # Second prefix originated within the MRAI window: held back.
        speakers[1].originate(p2)
        sim.run(until=2.0)
        assert speakers[2].best_route(p2) is None
        # After MRAI expiry it flows.
        sim.run(until=15.0)
        assert speakers[2].best_route(p2) is not None

    def test_convergence_with_mrai_matches_without(self, sim, diamond_graph):
        from repro.bgp.network import Network

        results = {}
        for mrai in (0.0, 5.0):
            net = Network(diamond_graph, config=SpeakerConfig(mrai=mrai))
            net.establish_sessions()
            net.originate(1, P)
            net.run_to_convergence()
            results[mrai] = net.best_origins(P)
        assert results[0.0] == results[5.0]


class TestResetClearsCaches:
    def test_export_cache_cleared_on_sim_reset(self, sim):
        speakers = linked_speakers(sim, 1, 2, 3)
        speakers[1].originate(P)
        sim.run()
        # Propagation populated the per-speaker memo caches.
        assert any(s._export_cache for s in speakers.values())
        assert any(s._established_cache is not None for s in speakers.values())
        sim.reset()
        for speaker in speakers.values():
            assert speaker._export_cache == {}
            assert speaker._prepend_cache == {}
            assert speaker._established_cache is None

    def test_clear_caches_is_idempotent(self, sim):
        speaker = BGPSpeaker(sim, 1)
        speaker.clear_caches()
        speaker.clear_caches()
        assert speaker._export_cache == {}


class TestSpeakerMetrics:
    def _run_instrumented(self):
        from repro.eventsim import Simulator
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(seed=3, metrics=registry)
        speakers = linked_speakers(sim, 1, 2, 3)
        speakers[1].originate(P)
        sim.run()
        return registry, speakers

    def test_update_counters_track_traffic(self):
        registry, speakers = self._run_instrumented()
        snapshot = registry.snapshot()
        assert snapshot["bgp.updates_sent"] > 0
        assert snapshot["bgp.updates_received"] > 0
        assert snapshot["bgp.decision_runs"] > 0
        # Counters are network-wide: both forwarding hops contribute to
        # the same named instruments.
        assert snapshot["bgp.updates_received"] <= snapshot["bgp.updates_sent"]

    def test_export_cache_counters(self):
        registry, _ = self._run_instrumented()
        snapshot = registry.snapshot()
        assert snapshot["bgp.export_cache_misses"] > 0
        assert snapshot["bgp.export_cache_hits"] >= 0

    def test_uninstrumented_speaker_has_no_registry_side_effects(self, sim):
        speakers = linked_speakers(sim, 1, 2)
        speakers[1].originate(P)
        sim.run()
        assert sim.metrics is None
