"""Tests for the feed tailer and the resumable stream service.

The load-bearing property here is the ISSUE acceptance criterion: a run
killed mid-stream and resumed from its checkpoint produces an alarm log
bit-identical to the uninterrupted run — both when resuming onto the same
log (truncate-and-continue) and onto a fresh path (concatenation).
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.net.addresses import Prefix
from repro.obs.metrics import MetricsRegistry
from repro.stream.checkpoint import CheckpointError, load_checkpoint
from repro.stream.feed import FeedError, FeedRecord, FeedWriter, snapshot_deltas
from repro.stream.service import FeedTailer, StreamService

P1 = Prefix.parse("10.0.0.0/24")

#: A small faulted trace: ~40 days, one 30-prefix fault spike on day 10.
TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)


def write_trace_feed(path, seed=7, config=TRACE_CONFIG):
    generator = TraceGenerator(config, random.Random(seed))
    with FeedWriter(path) as writer:
        return writer.write_all(snapshot_deltas(generator.snapshots()))


class TestFeedTailer:
    def test_reads_batches_skipping_header(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        records = [
            FeedRecord(op="A", time=0.0, prefix=P1, origin=7),
            FeedRecord(op="W", time=1.0, prefix=P1, origin=7),
            FeedRecord(op="T", time=1.0),
        ]
        with FeedWriter(path) as writer:
            writer.write_all(records)
        tailer = FeedTailer(path)
        try:
            assert tailer.read_batch(2) == records[:2]
            assert tailer.read_batch(10) == records[2:]
            assert tailer.read_batch(10) == []
        finally:
            tailer.close()

    def test_partial_line_left_unconsumed(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        complete = FeedRecord(op="T", time=0.0)
        with path.open("w") as handle:
            handle.write(complete.to_json_line() + "\n")
            handle.write('{"op": "T", "t": 1')  # no trailing newline
        tailer = FeedTailer(path)
        try:
            assert tailer.read_batch(10) == [complete]
            resumable = tailer.byte_offset
            assert tailer.read_batch(10) == []
            assert tailer.byte_offset == resumable
            # The producer finishes the line; the tailer picks it up.
            with path.open("a") as handle:
                handle.write(".5}\n")
            assert tailer.read_batch(10) == [FeedRecord(op="T", time=1.5)]
        finally:
            tailer.close()

    def test_byte_offset_survives_seek(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        records = [FeedRecord(op="T", time=float(t)) for t in range(5)]
        with FeedWriter(path) as writer:
            writer.write_all(records)
        first = FeedTailer(path)
        first.read_batch(3)
        mark = first.byte_offset
        rest = first.read_batch(10)
        first.close()
        second = FeedTailer(path)
        try:
            second.seek(mark)
            assert second.read_batch(10) == rest
        finally:
            second.close()

    def test_bad_line_error_names_file_and_byte(self, tmp_path):
        path = tmp_path / "feed.jsonl"
        path.write_text('{"op": "T", "t": 0}\n{broken\n')
        tailer = FeedTailer(path)
        try:
            with pytest.raises(FeedError, match="at byte 20"):
                tailer.read_batch(10)
        finally:
            tailer.close()


class TestServiceBasics:
    def test_full_run_summary(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        written = write_trace_feed(feed)
        service = StreamService(
            feed, tmp_path / "alarms.jsonl", tmp_path / "cp.json"
        )
        summary = service.run()
        assert summary.records == written
        assert summary.offset == written
        assert summary.eof is True
        assert summary.stopped is False
        assert summary.days_ticked == 40
        assert summary.alarms_emitted >= 30  # fault pairs conflict
        log_lines = (tmp_path / "alarms.jsonl").read_text().splitlines()
        assert len(log_lines) == summary.alarm_lines == summary.alarms_emitted
        assert all(json.loads(line)["kind"] for line in log_lines)

    def test_final_checkpoint_always_written(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        written = write_trace_feed(feed)
        cp_path = tmp_path / "cp.json"
        service = StreamService(
            feed, tmp_path / "alarms.jsonl", cp_path, checkpoint_every=10 ** 9
        )
        summary = service.run()
        assert summary.checkpoints == 1
        assert load_checkpoint(cp_path).offset == written

    def test_fresh_run_truncates_stale_log(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write(FeedRecord(op="T", time=0.0))
        alarms = tmp_path / "alarms.jsonl"
        alarms.write_text("stale line\n")
        StreamService(feed, alarms).run()
        assert alarms.read_text() == ""

    def test_invalid_parameters_rejected(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with pytest.raises(ValueError, match="batch_size"):
            StreamService(feed, tmp_path / "a.jsonl", batch_size=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            StreamService(feed, tmp_path / "a.jsonl", checkpoint_every=0)

    def test_resume_without_checkpoint_path_rejected(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write(FeedRecord(op="T", time=0.0))
        service = StreamService(feed, tmp_path / "a.jsonl")
        with pytest.raises(ValueError, match="no checkpoint path"):
            service.run(resume=True)

    def test_resume_with_missing_checkpoint_raises(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write(FeedRecord(op="T", time=0.0))
        service = StreamService(feed, tmp_path / "a.jsonl", tmp_path / "cp.json")
        with pytest.raises(CheckpointError, match="no checkpoint"):
            service.run(resume=True)


class TestResumeBitIdentity:
    def _uninterrupted_log(self, tmp_path, **kwargs):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        alarms = tmp_path / "alarms_full.jsonl"
        summary = StreamService(
            feed, alarms, tmp_path / "cp_full.json", **kwargs
        ).run()
        return feed, alarms.read_bytes(), summary

    def test_same_path_resume_is_bit_identical(self, tmp_path):
        feed, expected, full = self._uninterrupted_log(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        interrupted = StreamService(
            feed, alarms, cp, checkpoint_every=100, max_records=full.records // 2
        ).run()
        assert interrupted.records < full.records
        resumed = StreamService(feed, alarms, cp).run(resume=True)
        assert resumed.offset == full.records
        assert alarms.read_bytes() == expected
        assert resumed.days_ticked + interrupted.days_ticked >= full.days_ticked

    def test_fresh_path_resume_concatenates_bit_identical(self, tmp_path):
        feed, expected, full = self._uninterrupted_log(tmp_path)
        part1 = tmp_path / "alarms_part1.jsonl"
        part2 = tmp_path / "alarms_part2.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(
            feed, part1, cp, checkpoint_every=100, max_records=full.records // 3
        ).run()
        StreamService(feed, part2, cp).run(resume=True)
        assert part1.read_bytes() + part2.read_bytes() == expected

    def test_double_interruption_still_bit_identical(self, tmp_path):
        feed, expected, full = self._uninterrupted_log(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        third = full.records // 3
        StreamService(feed, alarms, cp, max_records=third).run()
        StreamService(feed, alarms, cp, max_records=third).run(resume=True)
        StreamService(feed, alarms, cp).run(resume=True)
        assert alarms.read_bytes() == expected

    def test_resume_drops_lines_past_checkpoint(self, tmp_path):
        # Simulate a crash after an alarm flush but before its checkpoint
        # became durable: the orphan line is rolled back and re-emitted.
        feed, expected, full = self._uninterrupted_log(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(
            feed, alarms, cp, max_records=full.records // 2
        ).run()
        with alarms.open("a") as handle:
            handle.write('{"orphan": "line"}\n')
        StreamService(feed, alarms, cp).run(resume=True)
        assert alarms.read_bytes() == expected

    def test_resume_daily_counts_match_uninterrupted(self, tmp_path):
        feed, _, full = self._uninterrupted_log(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(feed, alarms, cp, max_records=full.records // 2).run()
        service = StreamService(feed, alarms, cp)
        resumed = service.run(resume=True)
        baseline = StreamService(
            feed, tmp_path / "b.jsonl", tmp_path / "b_cp.json"
        )
        baseline.run()
        assert service.engine.daily_counts == baseline.engine.daily_counts
        assert resumed.moas_active == baseline.engine.moas_active


class TestFollowAndThrottle:
    def test_follow_mode_waits_then_consumes(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write(FeedRecord(op="A", time=0.0, prefix=P1, origin=7))
        service = StreamService(
            feed, tmp_path / "alarms.jsonl", follow=True, poll_interval=0.01
        )
        polls = []

        def fake_sleeper(seconds):
            polls.append(seconds)
            if len(polls) == 1:
                with feed.open("a") as handle:
                    handle.write(FeedRecord(op="T", time=0.0).to_json_line() + "\n")
            else:
                service.request_stop()

        service._sleeper = fake_sleeper
        summary = service.run()
        assert summary.records == 2
        assert summary.days_ticked == 1
        assert summary.stopped is True
        assert summary.eof is False
        assert polls == [0.01, 0.01]

    def test_throttle_sleeps_once_per_batch(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write_all(
                FeedRecord(op="T", time=float(t)) for t in range(10)
            )
        naps = []
        service = StreamService(
            feed,
            tmp_path / "alarms.jsonl",
            batch_size=3,
            throttle=0.5,
            sleeper=naps.append,
        )
        summary = service.run()
        assert summary.records == 10
        assert naps == [0.5, 0.5, 0.5, 0.5]  # ceil(10 / 3) batches

    def test_injected_clock_times_the_run(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        with FeedWriter(feed) as writer:
            writer.write(FeedRecord(op="T", time=0.0))
        ticks = iter(range(100))
        service = StreamService(
            feed, tmp_path / "alarms.jsonl", clock=lambda: float(next(ticks))
        )
        summary = service.run()
        assert summary.wall_seconds > 0
        assert summary.events_per_sec > 0


class TestManifest:
    def test_manifest_record_shape(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        registry = MetricsRegistry()
        service = StreamService(
            feed, tmp_path / "alarms.jsonl", tmp_path / "cp.json", metrics=registry
        )
        summary = service.run()
        record = service.manifest_record(summary, metrics=registry)
        assert record.spec["kind"] == "stream"
        assert record.outcome["records"] == summary.records
        assert record.metrics["stream.alarms"] == summary.alarms_emitted
        assert record.worker == "stream"
        payload = record.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestSigterm:
    def test_sigterm_then_resume_is_bit_identical(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        expected = tmp_path / "alarms_full.jsonl"
        StreamService(feed, expected, tmp_path / "cp_full.json").run()

        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        env = dict(os.environ, PYTHONPATH="src")
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "stream",
            "run",
            str(feed),
            "--alarms",
            str(alarms),
            "--checkpoint",
            str(cp),
            "--batch",
            "16",
            "--checkpoint-every",
            "200",
            "--throttle",
            "0.02",
        ]
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
        time.sleep(1.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
        assert proc.returncode == 0, err
        assert "resume with --resume" in out
        assert cp.exists()
        # The interrupted run must have stopped early, or the test proves
        # nothing about resumption.
        interrupted_offset = load_checkpoint(cp).offset
        full_offset = load_checkpoint(tmp_path / "cp_full.json").offset
        assert 0 < interrupted_offset < full_offset

        resume_cmd = cmd[:12] + ["--resume"]  # drop throttle, keep paths
        done = subprocess.run(
            resume_cmd, env=env, capture_output=True, text=True, timeout=60
        )
        assert done.returncode == 0, done.stderr
        assert alarms.read_bytes() == expected.read_bytes()
