"""HTTP API tests: the looking-glass server against the model answers."""

from __future__ import annotations

import json
import random
import threading
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.obs.metrics import MetricsRegistry
from repro.query import QueryIndex, build_index, canonical_json
from repro.query.model import daily_answer, prefix_report, stats_answer, top_answer
from repro.query.server import make_server
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.service import StreamService

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    root = tmp_path_factory.mktemp("queryhttp")
    feed = root / "feed.jsonl"
    generator = TraceGenerator(TRACE_CONFIG, random.Random(7))
    with FeedWriter(feed) as writer:
        writer.write_all(snapshot_deltas(generator.snapshots()))
    alarms = root / "alarms.log"
    StreamService(feed, alarms, None, checkpoint_every=500).run()
    idx = root / "idx"
    build_index([feed], alarms, idx, segment_days=10)
    return feed, alarms, idx


@pytest.fixture()
def server(store):
    _, _, idx = store
    metrics = MetricsRegistry()
    httpd = make_server(idx, port=0, metrics=metrics)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    try:
        yield f"http://{host}:{port}", httpd, metrics
    finally:
        httpd.shutdown()
        thread.join(timeout=10)
        httpd.server_close()


def get(base, path, headers=None):
    request = urllib.request.Request(base + path, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestEndpoints:
    def test_healthz(self, server, store):
        base, httpd, _ = server
        status, _, body = get(base, "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["generation"] == httpd.index.generation
        assert doc["records"] == httpd.index.records

    def test_stats_matches_model(self, server, store):
        base, _, _ = server
        _, _, idx = store
        status, headers, body = get(base, "/v1/stats")
        assert status == 200
        state = QueryIndex(idx).state
        assert body.decode() == canonical_json(stats_answer(state)) + "\n"
        assert headers["Content-Type"] == "application/json"
        assert int(headers["Content-Length"]) == len(body)

    def test_prefix_found_and_missing(self, server, store):
        base, _, _ = server
        _, _, idx = store
        state = QueryIndex(idx).state
        target = sorted(state.prefixes)[0]
        status, _, body = get(
            base, "/v1/prefix?p=" + urllib.parse.quote(target)
        )
        assert status == 200
        assert body.decode() == canonical_json(prefix_report(state, target)) + "\n"
        status, _, body = get(base, "/v1/prefix?p=203.0.113.0/24")
        assert status == 200
        assert json.loads(body)["found"] is False

    def test_top_and_daily_match_model(self, server, store):
        base, _, _ = server
        _, _, idx = store
        state = QueryIndex(idx).state
        for by in ("alarms", "transitions", "moas_days"):
            status, _, body = get(base, f"/v1/top?k=3&by={by}")
            assert status == 200
            assert body.decode() == canonical_json(top_answer(state, 3, by)) + "\n"
        for kind in ("alarms", "moas"):
            status, _, body = get(base, f"/v1/daily?kind={kind}")
            assert status == 200
            assert body.decode() == canonical_json(daily_answer(state, kind)) + "\n"

    def test_error_statuses(self, server):
        base, _, _ = server
        assert get(base, "/nope")[0] == 404
        assert get(base, "/v1/prefix")[0] == 400  # missing ?p=
        assert get(base, "/v1/top?by=bogus")[0] == 400
        assert get(base, "/v1/top?k=0")[0] == 400
        assert get(base, "/v1/daily?kind=bogus")[0] == 400

    def test_etag_round_trip(self, server):
        base, _, metrics = server
        status, headers, _ = get(base, "/v1/stats")
        assert status == 200
        etag = headers["ETag"]
        status, headers, body = get(
            base, "/v1/stats", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag
        snapshot = metrics.snapshot()
        assert snapshot["query.requests"] >= 2
        assert snapshot["query.not_modified"] == 1


class TestLiveReload:
    def test_new_generation_served_without_restart(self, store, tmp_path):
        feed, alarms, _ = store
        idx = tmp_path / "idx"
        build_index([feed], alarms, idx, segment_days=1000)
        httpd = make_server(idx, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        host, port = httpd.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            _, headers_before, _ = get(base, "/v1/stats")
            # Rebuild the index behind the running server with a finer
            # cadence: new generation, same answers.
            build_index([feed], alarms, idx, segment_days=5)
            _, headers_after, body = get(base, "/v1/stats")
            assert headers_after["ETag"] != headers_before["ETag"]
            assert json.loads(body)["records"] == QueryIndex(idx).records
        finally:
            httpd.shutdown()
            thread.join(timeout=10)
            httpd.server_close()
