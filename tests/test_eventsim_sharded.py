"""Unit tests for the sharded engine layer (partition, queue, simulator)."""

from __future__ import annotations

import pytest

from repro.eventsim.sharded import (
    KeyedEvent,
    KeyedEventQueue,
    ShardSimulator,
    partition_speakers,
)
from repro.eventsim.simulator import SimulationError
from repro.topology.generators import generate_paper_topology


def _noop() -> None:
    pass


class TestPartition:
    def test_deterministic_and_complete(self):
        graph = generate_paper_topology(63, seed=8)
        first = partition_speakers(graph.asns(), graph.edges(), 4)
        second = partition_speakers(graph.asns(), graph.edges(), 4)
        assert first == second
        assert set(first) == set(graph.asns())
        assert set(first.values()) <= {0, 1, 2, 3}

    def test_balanced_within_cap(self):
        graph = generate_paper_topology(63, seed=8)
        for n_shards in (2, 3, 4, 7):
            assignment = partition_speakers(
                graph.asns(), graph.edges(), n_shards
            )
            sizes = [0] * n_shards
            for shard in assignment.values():
                sizes[shard] += 1
            cap = -(-len(graph) // n_shards)
            assert max(sizes) <= cap

    def test_affinity_beats_round_robin(self):
        """Neighbour-affinity placement must cut fewer edges than a
        degree-ordered round-robin split of the same graph."""
        graph = generate_paper_topology(63, seed=8)
        edges = graph.edges()
        assignment = partition_speakers(graph.asns(), edges, 2)
        cut = sum(1 for a, b in edges if assignment[a] != assignment[b])
        ordered = sorted(
            graph.asns(), key=lambda asn: (-graph.degree(asn), asn)
        )
        round_robin = {asn: i % 2 for i, asn in enumerate(ordered)}
        rr_cut = sum(1 for a, b in edges if round_robin[a] != round_robin[b])
        assert cut < rr_cut

    def test_single_shard_and_errors(self):
        assert partition_speakers([1, 2, 3], [(1, 2)], 1) == {1: 0, 2: 0, 3: 0}
        assert partition_speakers([], [], 2) == {}
        with pytest.raises(ValueError):
            partition_speakers([1], [], 0)


class TestKeyedEventQueue:
    def test_orders_by_time_priority_then_key(self):
        queue = KeyedEventQueue()
        # Insertion order deliberately scrambled relative to key order.
        queue.push(KeyedEvent(2.0, _noop, (0, 0, 0), label="late"))
        queue.push(KeyedEvent(1.0, _noop, (5, 1, 0), label="second"))
        queue.push(KeyedEvent(1.0, _noop, (5, 0, 7), label="first"))
        queue.push(KeyedEvent(1.0, _noop, (5, 0, 2), priority=-1, label="pri"))
        order = [event.label for event in queue.drain()]
        assert order == ["pri", "first", "second", "late"]

    def test_due_keys_sorted_and_live_only(self):
        queue = KeyedEventQueue()
        queue.push(KeyedEvent(1.0, _noop, (0, 2, 0)))
        cancelled = KeyedEvent(1.0, _noop, (0, 1, 0))
        queue.push(cancelled)
        queue.push(KeyedEvent(1.0, _noop, (0, 0, 3), priority=1))
        queue.push(KeyedEvent(2.0, _noop, (0, 0, 0)))
        cancelled.cancel()
        assert queue.due_keys(1.0) == [(0, (0, 2, 0)), (1, (0, 0, 3))]
        assert len(queue) == 3

    def test_rejects_plain_events_and_double_push(self):
        from repro.eventsim.event import Event

        queue = KeyedEventQueue()
        with pytest.raises(TypeError):
            queue.push(Event(1.0, _noop))
        event = KeyedEvent(1.0, _noop, (0, 0, 0))
        queue.push(event)
        with pytest.raises(ValueError):
            queue.push(event)

    def test_pop_due_respects_bound(self):
        queue = KeyedEventQueue()
        queue.push(KeyedEvent(5.0, _noop, (0, 0, 0)))
        assert queue.pop_due(4.0) is None
        assert queue.pop_due(5.0) is not None


class TestShardSimulator:
    def test_run_is_disabled(self):
        sim = ShardSimulator(shard_id=0)
        with pytest.raises(SimulationError):
            sim.run()

    def test_schedule_stamps_firing_context(self):
        sim = ShardSimulator(shard_id=0)
        sim.begin_ops(epoch=3, now=0.0)
        sim.begin_op(2)
        handle_a = sim.schedule_at(1.0, _noop)
        handle_b = sim.schedule_at(1.0, _noop)
        assert sim.due_report(1.0) == [(0, (3, 2, 0)), (0, (3, 2, 1))]
        assert not handle_a.cancelled and not handle_b.cancelled

    def test_same_tick_child_raises_during_tick(self):
        sim = ShardSimulator(shard_id=0)

        def schedules_now() -> None:
            sim.schedule_at(sim.now, _noop)

        sim.begin_ops(epoch=1, now=0.0)
        sim.schedule_at(1.0, schedules_now)
        due = sim.due_report(1.0)
        with pytest.raises(SimulationError, match="same-tick"):
            sim.process_tick(1.0, epoch=2, due=due, ranks=[0])

    def test_remote_in_the_past_raises(self):
        sim = ShardSimulator(shard_id=0)
        sim.begin_ops(epoch=1, now=5.0)
        with pytest.raises(SimulationError, match="lookahead"):
            sim.schedule_remote(4.0, (0, 0, 0), _noop)

    def test_clock_rewind_raises(self):
        sim = ShardSimulator(shard_id=0)
        sim.begin_ops(epoch=1, now=5.0)
        with pytest.raises(SimulationError, match="rewind"):
            sim.begin_ops(epoch=2, now=4.0)

    def test_process_tick_interleaves_remote_and_local(self):
        """Remote events fire at their carried-key positions among local
        ones, and children are stamped with the firing's global rank."""
        sim = ShardSimulator(shard_id=0)
        fired = []

        def mark(name):
            def action() -> None:
                fired.append((name, sim.order_context))

            return action

        sim.begin_ops(epoch=1, now=0.0)
        sim.schedule_at(1.0, mark("local"))  # key (1, 0, 0)
        sim.schedule_remote(1.0, (0, 5, 2), mark("remote"))  # sorts first
        due = sim.due_report(1.0)
        assert due == [(0, (0, 5, 2)), (0, (1, 0, 0))]
        # Coordinator-assigned global ranks: remote is rank 3, local rank 7.
        processed = sim.process_tick(1.0, epoch=2, due=due, ranks=[3, 7])
        assert processed == 2
        assert fired == [("remote", (2, 3)), ("local", (2, 7))]

    def test_cancelled_event_burns_its_rank_slot(self):
        sim = ShardSimulator(shard_id=0)
        fired = []
        sim.begin_ops(epoch=1, now=0.0)
        doomed = sim.schedule_at(1.0, lambda: fired.append("doomed"))
        sim.schedule_at(1.0, lambda: fired.append("kept"))
        due = sim.due_report(1.0)
        doomed.cancel()
        sim.process_tick(1.0, epoch=2, due=due, ranks=[0, 1])
        assert fired == ["kept"]

    def test_foreign_key_in_tick_raises(self):
        sim = ShardSimulator(shard_id=0)
        sim.begin_ops(epoch=1, now=0.0)
        sim.schedule_at(1.0, _noop)
        with pytest.raises(SimulationError, match="rank exchange"):
            # Report claims a different key than the queued event's.
            sim.process_tick(
                1.0, epoch=2, due=[(0, (9, 9, 9))], ranks=[0]
            )
