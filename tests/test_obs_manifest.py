"""Tests for JSONL run manifests, timing masking, and the acceptance
property: worker count never changes a manifest beyond its timing fields."""

import json

import pytest

from repro.experiments.runner import run_hijack_scenario
from repro.experiments.sweep import SweepConfig, build_sweep_scenarios, run_sweep
from repro.experiments.runner import DeploymentKind
from repro.obs.manifest import (
    TIMING_KEYS,
    ManifestRecord,
    ManifestWriter,
    aggregate_manifest,
    manifests_equivalent,
    mask_timing,
    read_manifest,
)
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


def _record(index=0, seed=7, wall=0.5, worker=100, poisoned=0.25, alarms=3):
    return ManifestRecord(
        index=index,
        seed=seed,
        spec={"deployment": "full-moas-detection", "n_attackers": 2},
        outcome={
            "poisoned_fraction": poisoned,
            "alarms": alarms,
            "events_processed": 10,
            "updates_sent": 20,
            "routes_suppressed": 1,
            "wall_seconds": wall,
        },
        metrics={"sim.events": 10},
        worker=worker,
        wall_seconds=wall,
    )


class TestRecord:
    def test_dict_roundtrip(self):
        record = _record()
        clone = ManifestRecord.from_dict(record.to_dict())
        assert clone == record

    def test_json_line_is_canonical(self):
        line = _record().to_json_line()
        data = json.loads(line)
        assert list(data) == sorted(data)
        assert "\n" not in line


class TestWriterAndReader:
    def test_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        records = [_record(index=i, seed=i * 11) for i in range(3)]
        with ManifestWriter(path) as writer:
            for record in records:
                writer.write(record)
            assert writer.records_written == 3
        assert read_manifest(path) == records

    def test_write_after_close_raises(self, tmp_path):
        writer = ManifestWriter(tmp_path / "run.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="already closed"):
            writer.write(_record())

    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(_record().to_json_line() + "\n\n\n")
        assert len(read_manifest(path)) == 1

    def test_corrupt_line_reports_position(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(_record().to_json_line() + "\n{not json\n")
        with pytest.raises(ValueError, match=":2:"):
            read_manifest(path)


class TestMaskTiming:
    def test_masks_top_level_and_nested(self):
        masked = mask_timing(
            {
                "wall_seconds": 1.5,
                "worker": 4242,
                "outcome": {"events_per_sec": 99.0, "alarms": 3},
                "spans": [{"wall_seconds": 0.2, "name": "x"}],
            }
        )
        assert masked == {
            "wall_seconds": 0,
            "worker": 0,
            "outcome": {"events_per_sec": 0, "alarms": 3},
            "spans": [{"wall_seconds": 0, "name": "x"}],
        }

    def test_does_not_mutate_input(self):
        original = {"wall_seconds": 1.5, "nested": {"worker": 9}}
        mask_timing(original)
        assert original == {"wall_seconds": 1.5, "nested": {"worker": 9}}

    def test_timing_keys_are_the_documented_set(self):
        # Growing this set is fine, but must be a conscious decision: every
        # key here is excluded from all determinism comparisons.
        assert TIMING_KEYS == {
            "wall_seconds",
            "worker",
            "events_per_sec",
            "checkpoint_seconds",
            "warm_start",
            "restore_seconds",
        }


class TestEquivalence:
    def test_timing_differences_are_equivalent(self):
        a = [_record(wall=0.1, worker=100)]
        b = [_record(wall=9.9, worker=200)]
        assert manifests_equivalent(a, b)

    def test_outcome_differences_are_not(self):
        assert not manifests_equivalent(
            [_record(poisoned=0.25)], [_record(poisoned=0.30)]
        )

    def test_length_mismatch(self):
        assert not manifests_equivalent([_record()], [_record(), _record()])


class TestAggregation:
    def test_groups_by_deployment_and_attackers(self):
        records = [
            _record(index=0, poisoned=0.2, alarms=2),
            _record(index=1, poisoned=0.4, alarms=4),
        ]
        aggregated = aggregate_manifest(records)
        (row,) = aggregated["rows"]
        assert row["deployment"] == "full-moas-detection"
        assert row["runs"] == 2
        assert row["mean_poisoned_fraction"] == pytest.approx(0.3)
        assert row["min_poisoned_fraction"] == 0.2
        assert row["max_poisoned_fraction"] == 0.4
        assert row["mean_alarms"] == 3.0
        totals = aggregated["totals"]
        assert totals["records"] == 2
        assert totals["events_processed"] == 20
        assert totals["updates_sent"] == 40
        assert totals["alarms"] == 6
        assert totals["routes_suppressed"] == 2


class TestWorkerCountInvariance:
    """The PR's acceptance criterion: workers=1 and workers=4 manifests are
    bit-identical after masking timing fields."""

    def test_manifests_bit_identical_across_worker_counts(self, graph, tmp_path):
        config = dict(
            graph=graph,
            attacker_fractions=(0.10, 0.30),
            n_origin_sets=2,
            n_attacker_sets=2,
            deployment=DeploymentKind.FULL,
        )
        path_serial = tmp_path / "serial.jsonl"
        path_pooled = tmp_path / "pooled.jsonl"
        serial = run_sweep(
            SweepConfig(**config), workers=1, manifest=str(path_serial)
        )
        pooled = run_sweep(
            SweepConfig(**config), workers=4, manifest=str(path_pooled)
        )
        assert pooled.points == serial.points

        records_serial = read_manifest(path_serial)
        records_pooled = read_manifest(path_pooled)
        assert len(records_serial) == 8  # 2 fractions x 2 origin x 2 attacker
        assert manifests_equivalent(records_serial, records_pooled)
        # Bit-identical as *text* too, once masked: the canonical JSON lines
        # match byte for byte.
        masked_serial = [
            json.dumps(mask_timing(r.to_dict()), sort_keys=True)
            for r in records_serial
        ]
        masked_pooled = [
            json.dumps(mask_timing(r.to_dict()), sort_keys=True)
            for r in records_pooled
        ]
        assert masked_serial == masked_pooled

    def test_manifest_records_carry_the_run(self, graph, tmp_path):
        config = SweepConfig(
            graph=graph,
            attacker_fractions=(0.10,),
            n_origin_sets=1,
            n_attacker_sets=2,
            deployment=DeploymentKind.FULL,
        )
        (_, _, scenarios), = build_sweep_scenarios(config)
        path = tmp_path / "run.jsonl"
        run_sweep(config, workers=1, manifest=str(path))
        records = read_manifest(path)
        assert [r.index for r in records] == [0, 1]
        assert [r.seed for r in records] == [s.seed for s in scenarios]
        for record, scenario in zip(records, scenarios):
            plain = run_hijack_scenario(scenario)
            assert record.spec["deployment"] == "full-moas-detection"
            assert record.spec["seed"] == scenario.seed
            assert record.outcome["alarms"] == plain.alarms
            assert record.outcome["poisoned_fraction"] == pytest.approx(
                plain.poisoned_fraction
            )
            # Metric and outcome views of the same run must agree.
            assert record.metrics["sim.events"] == record.outcome[
                "events_processed"
            ]
            assert record.metrics["bgp.updates_sent"] == record.outcome[
                "updates_sent"
            ]
            assert record.metrics["checker.alarms"] == record.outcome["alarms"]
