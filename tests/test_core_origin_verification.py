"""Unit tests for origin oracles (§4.4)."""

import pytest

from repro.core.origin_verification import (
    DnsOracle,
    GroundTruthOracle,
    PrefixOriginRegistry,
    build_moas_zone,
)
from repro.dnssub.dnssec import KeyRing, sign_record
from repro.dnssub.records import (
    MoasRecordData,
    RecordType,
    ResourceRecord,
    moasrr_name_for_prefix,
)
from repro.dnssub.resolver import Resolver
from repro.net.addresses import Prefix

P = Prefix.parse("10.2.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


class TestRegistry:
    def test_register_and_query(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1, 2])
        assert reg.origins(P) == frozenset({1, 2})
        assert reg.is_authorised(P, 1) is True
        assert reg.is_authorised(P, 3) is False

    def test_unknown_prefix(self):
        reg = PrefixOriginRegistry()
        assert reg.origins(P) is None
        assert reg.is_authorised(P, 1) is None

    def test_empty_origins_rejected(self):
        with pytest.raises(ValueError):
            PrefixOriginRegistry().register(P, [])

    def test_reregister_replaces(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        reg.register(P, [2])
        assert reg.origins(P) == frozenset({2})

    def test_deregister(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        reg.deregister(P)
        assert P not in reg
        reg.deregister(P)  # idempotent

    def test_len_and_contains(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        assert len(reg) == 1
        assert P in reg and Q not in reg


class TestGroundTruthOracle:
    def test_answers_and_counts(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        oracle = GroundTruthOracle(reg)
        assert oracle.authorised_origins(P) == frozenset({1})
        assert oracle.authorised_origins(Q) is None
        assert oracle.lookups == 2


class TestDnsOracle:
    def make_resolver(self, registry, secure=False, keyring=None, reachability=None):
        resolver = Resolver(keyring=keyring, secure=secure, reachability=reachability)
        resolver.host_zone(build_moas_zone(registry, keyring=keyring))
        return resolver

    def test_answers_from_moasrr(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1, 2])
        oracle = DnsOracle(self.make_resolver(reg))
        assert oracle.authorised_origins(P) == frozenset({1, 2})

    def test_unknown_prefix_none(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        oracle = DnsOracle(self.make_resolver(reg))
        assert oracle.authorised_origins(Q) is None

    def test_unreachable_zone_none(self):
        """The §2 circular dependency: when routing to the DNS server is
        broken, origin verification fails."""
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        resolver = self.make_resolver(reg, reachability=lambda apex: False)
        oracle = DnsOracle(resolver)
        assert oracle.authorised_origins(P) is None

    def test_secure_mode_accepts_signed_records(self):
        keyring = KeyRing()
        reg = PrefixOriginRegistry()
        reg.register(P, [1, 2])
        resolver = self.make_resolver(reg, secure=True, keyring=keyring)
        oracle = DnsOracle(resolver)
        assert oracle.authorised_origins(P) == frozenset({1, 2})

    def test_secure_mode_rejects_forged_record(self):
        """A forged (unsigned) MOASRR injected into the zone is filtered by
        DNSSEC verification; the genuine signed answer prevails."""
        keyring = KeyRing()
        reg = PrefixOriginRegistry()
        reg.register(P, [1, 2])
        zone = build_moas_zone(reg, keyring=keyring)
        forged = ResourceRecord(
            moasrr_name_for_prefix(P), RecordType.MOASRR, MoasRecordData([666])
        )
        zone.add(forged)
        resolver = Resolver(keyring=keyring, secure=True)
        resolver.host_zone(zone)
        oracle = DnsOracle(resolver)
        assert oracle.authorised_origins(P) == frozenset({1, 2})

    def test_insecure_mode_poisoned_by_forged_record(self):
        """Without DNSSEC the forged record is merged into the answer —
        the paper's argument for securing the DNS database."""
        reg = PrefixOriginRegistry()
        reg.register(P, [1, 2])
        zone = build_moas_zone(reg)
        zone.add(
            ResourceRecord(
                moasrr_name_for_prefix(P), RecordType.MOASRR, MoasRecordData([666])
            )
        )
        resolver = Resolver()
        resolver.host_zone(zone)
        oracle = DnsOracle(resolver)
        assert 666 in oracle.authorised_origins(P)


class TestMoasZone:
    def test_zone_contains_record_per_prefix(self):
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        reg.register(Q, [2, 3])
        zone = build_moas_zone(reg)
        assert len(zone) == 2
        records = zone.lookup(moasrr_name_for_prefix(Q), RecordType.MOASRR)
        assert records[0].data == MoasRecordData([2, 3])

    def test_signed_zone_records_verify(self):
        from repro.dnssub.dnssec import verify_record

        keyring = KeyRing()
        reg = PrefixOriginRegistry()
        reg.register(P, [1])
        zone = build_moas_zone(reg, keyring=keyring)
        for record in zone.records():
            assert verify_record(record, keyring, "moas.arpa")

    def test_moasrr_name_reverses_octets(self):
        assert moasrr_name_for_prefix(P) == "16.0.0.2.10.moas.arpa"
