"""Tests for the BGP MIB and the MIB-polling management application."""

import pytest

from repro.bgp.network import Network
from repro.core.mib import BgpMib, MibMoasApplication
from repro.core.moas_list import MoasList, moas_communities
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


@pytest.fixture
def converged(figure6_graph):
    net = Network(figure6_graph)
    net.establish_sessions()
    communities = moas_communities([1, 2])
    net.originate(1, P, communities=communities)
    net.originate(2, P, communities=communities)
    net.run_to_convergence()
    return net


class TestBgpMib:
    def test_peer_table_reflects_sessions(self, converged):
        mib = BgpMib(converged.speaker(4))
        rows = mib.peer_table()
        assert {r.remote_asn for r in rows} == {1, 3, 5}
        assert all(r.state == "established" for r in rows)
        assert all(r.local_asn == 4 for r in rows)

    def test_path_attr_table_lists_received_routes(self, converged):
        mib = BgpMib(converged.speaker(4))
        rows = [r for r in mib.path_attr_table() if r.prefix == P]
        assert len(rows) >= 2  # multiple learned routes for the prefix
        assert sum(1 for r in rows if r.best) == 1  # exactly one best

    def test_rows_carry_communities(self, converged):
        mib = BgpMib(converged.speaker(4))
        rows = mib.path_attr_table()
        assert any(
            MoasList.from_communities(r.communities) == MoasList([1, 2])
            for r in rows
        )


class TestManagementApplication:
    def test_no_findings_on_valid_moas(self, converged):
        app = MibMoasApplication(
            BgpMib(converged.speaker(asn)) for asn in (3, 4)
        )
        assert app.poll() == []
        assert app.polls == 1

    def test_detects_false_origin_across_routers(self, converged):
        converged.originate(5, P)  # false origin, no list
        converged.run_to_convergence()
        app = MibMoasApplication(
            BgpMib(converged.speaker(asn)) for asn in (3, 4)
        )
        findings = app.poll()
        assert len(findings) == 1
        finding = findings[0]
        assert finding.prefix == P
        assert MoasList([5]) in finding.lists_seen
        assert MoasList([1, 2]) in finding.lists_seen
        assert 5 in finding.origins_seen

    def test_single_router_view_can_suffice(self, converged):
        """A conflict visible within one router's Adj-RIB-In is enough."""
        converged.originate(5, P)
        converged.run_to_convergence()
        app = MibMoasApplication([BgpMib(converged.speaker(4))])
        findings = app.poll()
        assert findings and findings[0].observed_at == frozenset({4})

    def test_monitoring_does_not_change_routing(self, converged):
        converged.originate(5, P)
        converged.run_to_convergence()
        before = converged.best_origins(P)
        MibMoasApplication([BgpMib(converged.speaker(4))]).poll()
        assert converged.best_origins(P) == before

    def test_add_router_extends_coverage(self, figure6_graph):
        net = Network(figure6_graph)
        net.establish_sessions()
        net.originate(1, P, communities=moas_communities([1, 2]))
        net.originate(2, P, communities=moas_communities([1, 2]))
        net.originate(5, P)
        net.run_to_convergence()
        app = MibMoasApplication([])
        assert app.poll() == []  # no routers polled: blind
        app.add_router(BgpMib(net.speaker(4)))
        assert app.poll()
