"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_describe(self, capsys):
        assert main(["topology", "--size", "25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "25 ASes" in out
        assert "avg degree" in out

    def test_edge_list(self, capsys):
        main(["topology", "--size", "25", "--seed", "3", "--edges"])
        out = capsys.readouterr().out
        assert " -- " in out


class TestHijackCommand:
    def test_full_deployment(self, capsys):
        assert main([
            "hijack", "--size", "25", "--attackers", "0.1",
            "--deployment", "full", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "poisoned:" in out
        assert "alarms:" in out

    def test_none_deployment(self, capsys):
        assert main([
            "hijack", "--size", "25", "--deployment", "none", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "alarms: 0" in out


class TestStudyCommand:
    def test_short_study(self, capsys):
        assert main(["study", "--days", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "days observed" in out
        assert "30" in out


class TestMonitorCommand:
    def test_clean_dump(self, tmp_path, capsys):
        dump = tmp_path / "table.dump"
        dump.write_text(
            "# routeviews-dump date=d collector=c\n"
            "10.0.0.0/16 | 7 | 7 1\n"
            "10.0.0.0/16 | 8 | 8 9 1\n"
        )
        assert main(["monitor", str(dump)]) == 0
        assert "0 conflicts" in capsys.readouterr().out

    def test_conflicted_dump_exits_nonzero(self, tmp_path, capsys):
        dump = tmp_path / "table.dump"
        dump.write_text(
            "10.0.0.0/16 | 7 | 7 1\n"
            "10.0.0.0/16 | 8 | 8 5\n"
        )
        assert main(["monitor", str(dump)]) == 1
        out = capsys.readouterr().out
        assert "CONFLICT" in out


class TestFigureCommand:
    def test_fig8(self, capsys):
        assert main(["figure", "fig8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "25-AS" in out and "63-AS" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        assert main(["figure", "fig9", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "normal-bgp" in out
        assert "full-moas-detection" in out


class TestParser:
    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_available(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0


class TestSweepCommand:
    def test_sweep_with_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.jsonl"
        assert main([
            "sweep", "--size", "25", "--fractions", "0.1",
            "--origin-sets", "1", "--attacker-sets", "2",
            "--deployment", "full", "--seed", "3", "--workers", "1",
            "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "attackers%" in out
        assert "manifest written" in out
        from repro.obs.manifest import read_manifest

        assert len(read_manifest(manifest)) == 2

    def test_sweep_rejects_empty_fractions(self, capsys):
        assert main([
            "sweep", "--size", "25", "--fractions", " , ", "--seed", "3",
        ]) == 2
        assert "no attacker fractions" in capsys.readouterr().err


class TestReportCommand:
    @pytest.fixture()
    def manifest(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main([
            "sweep", "--size", "25", "--fractions", "0.1",
            "--origin-sets", "1", "--attacker-sets", "2",
            "--deployment", "full", "--seed", "3",
            "--manifest", str(path),
        ])
        capsys.readouterr()  # discard the sweep's own output
        return path

    def test_report_table(self, manifest, capsys):
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "deployment" in out
        assert "totals:" in out

    def test_report_json(self, manifest, capsys):
        import json

        assert main(["report", str(manifest), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["totals"]["records"] == 2
        assert data["rows"][0]["deployment"] == "full-moas-detection"

    def test_report_empty_manifest_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "no records" in capsys.readouterr().err


class TestHijackObservability:
    def test_spans_and_manifest_flags(self, tmp_path, capsys):
        import json

        spans = tmp_path / "spans.json"
        manifest = tmp_path / "one.jsonl"
        assert main([
            "hijack", "--size", "25", "--attackers", "0.1",
            "--deployment", "full", "--seed", "3",
            "--spans", str(spans), "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "spans written" in out
        assert "manifest written" in out
        dumped = json.loads(spans.read_text())
        assert any(span["name"] == "topology_build" for span in dumped)
        from repro.obs.manifest import read_manifest

        (record,) = read_manifest(manifest)
        assert record.spec["topology_size"] == 25
