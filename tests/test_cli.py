"""Tests for the command-line interface (invoked in-process)."""

import pytest

from repro.cli import main


class TestTopologyCommand:
    def test_describe(self, capsys):
        assert main(["topology", "--size", "25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "25 ASes" in out
        assert "avg degree" in out

    def test_edge_list(self, capsys):
        main(["topology", "--size", "25", "--seed", "3", "--edges"])
        out = capsys.readouterr().out
        assert " -- " in out


class TestHijackCommand:
    def test_full_deployment(self, capsys):
        assert main([
            "hijack", "--size", "25", "--attackers", "0.1",
            "--deployment", "full", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "poisoned:" in out
        assert "alarms:" in out

    def test_none_deployment(self, capsys):
        assert main([
            "hijack", "--size", "25", "--deployment", "none", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "alarms: 0" in out


class TestStudyCommand:
    def test_short_study(self, capsys):
        assert main(["study", "--days", "30", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "days observed" in out
        assert "30" in out


class TestMonitorCommand:
    def test_clean_dump(self, tmp_path, capsys):
        dump = tmp_path / "table.dump"
        dump.write_text(
            "# routeviews-dump date=d collector=c\n"
            "10.0.0.0/16 | 7 | 7 1\n"
            "10.0.0.0/16 | 8 | 8 9 1\n"
        )
        assert main(["monitor", str(dump)]) == 0
        assert "0 conflicts" in capsys.readouterr().out

    def test_conflicted_dump_exits_nonzero(self, tmp_path, capsys):
        dump = tmp_path / "table.dump"
        dump.write_text(
            "10.0.0.0/16 | 7 | 7 1\n"
            "10.0.0.0/16 | 8 | 8 5\n"
        )
        assert main(["monitor", str(dump)]) == 1
        out = capsys.readouterr().out
        assert "CONFLICT" in out


class TestFigureCommand:
    def test_fig8(self, capsys):
        assert main(["figure", "fig8", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "25-AS" in out and "63-AS" in out

    def test_unknown_figure(self, capsys):
        assert main(["figure", "fig99"]) == 2

    @pytest.mark.slow
    def test_fig9_quick(self, capsys):
        assert main(["figure", "fig9", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "normal-bgp" in out
        assert "full-moas-detection" in out


class TestParser:
    def test_missing_command_exits_2(self, capsys):
        assert main([]) == 2
        assert "usage:" in capsys.readouterr().err

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["bogus"]) == 2
        err = capsys.readouterr().err
        assert "usage:" in err
        assert "invalid choice" in err

    def test_help_lists_every_subcommand(self, capsys):
        assert main(["--help"]) == 0
        out = capsys.readouterr().out
        for command in (
            "figure", "study", "monitor", "topology", "hijack", "sweep",
            "report", "stream",
        ):
            assert command in out

    def test_stream_help_lists_gen_and_run(self, capsys):
        assert main(["stream", "--help"]) == 0
        out = capsys.readouterr().out
        assert "gen" in out and "run" in out


class TestSweepCommand:
    def test_sweep_with_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "run.jsonl"
        assert main([
            "sweep", "--size", "25", "--fractions", "0.1",
            "--origin-sets", "1", "--attacker-sets", "2",
            "--deployment", "full", "--seed", "3", "--workers", "1",
            "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "attackers%" in out
        assert "manifest written" in out
        from repro.obs.manifest import read_manifest

        assert len(read_manifest(manifest)) == 2

    def test_sweep_rejects_empty_fractions(self, capsys):
        assert main([
            "sweep", "--size", "25", "--fractions", " , ", "--seed", "3",
        ]) == 2
        assert "no attacker fractions" in capsys.readouterr().err


class TestReportCommand:
    @pytest.fixture()
    def manifest(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        main([
            "sweep", "--size", "25", "--fractions", "0.1",
            "--origin-sets", "1", "--attacker-sets", "2",
            "--deployment", "full", "--seed", "3",
            "--manifest", str(path),
        ])
        capsys.readouterr()  # discard the sweep's own output
        return path

    def test_report_table(self, manifest, capsys):
        assert main(["report", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "deployment" in out
        assert "totals:" in out

    def test_report_json(self, manifest, capsys):
        import json

        assert main(["report", str(manifest), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["totals"]["records"] == 2
        assert data["rows"][0]["deployment"] == "full-moas-detection"

    def test_report_empty_manifest_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 2
        assert "no records" in capsys.readouterr().err


class TestStreamCommand:
    def test_gen_then_run_round_trip(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        alarms = tmp_path / "alarms.log"
        checkpoint = tmp_path / "cp.json"
        manifest = tmp_path / "run.jsonl"
        assert main([
            "stream", "gen", "--days", "30", "--seed", "7",
            "--out", str(feed),
        ]) == 0
        assert "feed written" in capsys.readouterr().out
        assert main([
            "stream", "run", str(feed), "--alarms", str(alarms),
            "--checkpoint", str(checkpoint), "--checkpoint-every", "500",
            "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "processed" in out and "(30 days)" in out
        assert alarms.exists() and checkpoint.exists()
        from repro.obs.manifest import read_manifest

        (record,) = read_manifest(manifest)
        assert record.spec["kind"] == "stream"
        assert record.outcome["days_ticked"] == 30
        assert record.outcome["eof"] is True

    def test_gen_rejects_bad_days(self, capsys):
        assert main([
            "stream", "gen", "--days", "0", "--out", "ignored.jsonl",
        ]) == 2
        assert "--days" in capsys.readouterr().err

    def test_run_resume_requires_checkpoint(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        feed.write_text("")
        assert main([
            "stream", "run", str(feed), "--alarms",
            str(tmp_path / "alarms.log"), "--resume",
        ]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_run_missing_feed_fails_cleanly(self, tmp_path, capsys):
        assert main([
            "stream", "run", str(tmp_path / "absent.jsonl"),
            "--alarms", str(tmp_path / "alarms.log"),
        ]) == 1
        assert "stream run failed" in capsys.readouterr().err


class TestHijackObservability:
    def test_spans_and_manifest_flags(self, tmp_path, capsys):
        import json

        spans = tmp_path / "spans.json"
        manifest = tmp_path / "one.jsonl"
        assert main([
            "hijack", "--size", "25", "--attackers", "0.1",
            "--deployment", "full", "--seed", "3",
            "--spans", str(spans), "--manifest", str(manifest),
        ]) == 0
        out = capsys.readouterr().out
        assert "spans written" in out
        assert "manifest written" in out
        dumped = json.loads(spans.read_text())
        assert any(span["name"] == "topology_build" for span in dumped)
        from repro.obs.manifest import read_manifest

        (record,) = read_manifest(manifest)
        assert record.spec["topology_size"] == 25
