"""Tests for the sharded feed router.

Load-bearing properties: sharded detection agrees with a single engine
(daily MOAS counts sum across shards, alarms are the same set — the
prefix partition means no shard can duplicate another's alarms), the
merged alarm log's line order is deterministic, and kill-and-resume under
sharding is bit-identical, refusing on shard-count mismatches.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.checkpoint import CheckpointError, load_checkpoint
from repro.stream.engine import StreamEngine
from repro.stream.feed import FeedWriter, read_feed, snapshot_deltas
from repro.stream.router import (
    FeedRouter,
    RouterError,
    merged_daily_counts,
    route_line,
    shard_for_prefix,
)
from repro.stream.service import StreamService

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)


def write_trace_feed(path, seed=7, config=TRACE_CONFIG):
    generator = TraceGenerator(config, random.Random(seed))
    with FeedWriter(path) as writer:
        return writer.write_all(snapshot_deltas(generator.snapshots()))


class TestRouting:
    def test_route_line_extracts_the_prefix(self):
        line = b'{"m":[701,702],"o":701,"op":"A","p":"10.0.0.0/24","t":0.0}\n'
        assert route_line(line, 4) == shard_for_prefix(b"10.0.0.0/24", 4)

    def test_ticks_and_headers_are_not_routed(self):
        assert route_line(b'{"op":"T","t":3.0}\n', 4) is None
        assert (
            route_line(b'{"format":"repro-stream-feed","version":1}\n', 4)
            is None
        )

    def test_shard_assignment_is_stable_and_covering(self):
        prefixes = [f"10.0.{i}.0/24".encode() for i in range(256)]
        first = [shard_for_prefix(p, 4) for p in prefixes]
        assert first == [shard_for_prefix(p, 4) for p in prefixes]
        assert set(first) == {0, 1, 2, 3}  # every shard gets work

    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(RouterError, match="at least one feed"):
            FeedRouter([], tmp_path / "a.jsonl")
        with pytest.raises(RouterError, match="shards"):
            FeedRouter([tmp_path / "f"], tmp_path / "a.jsonl", shards=0)


class TestShardedParity:
    def test_two_shards_agree_with_single_engine(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        single_alarms = tmp_path / "single.jsonl"
        single = StreamService(
            feed, single_alarms, tmp_path / "single_cp.json"
        )
        single_summary = single.run()
        router = FeedRouter(
            [feed],
            tmp_path / "sharded.jsonl",
            tmp_path / "cp.json",
            shards=2,
            checkpoint_every=500,
        )
        summary = router.run()
        assert summary.shards == 2
        assert summary.eof is True
        assert summary.alarms_emitted == single_summary.alarms_emitted
        assert summary.alarm_duplicates == single_summary.alarm_duplicates
        assert summary.moas_active == single_summary.moas_active
        assert summary.state_prefixes == single_summary.state_prefixes
        assert summary.days_ticked == single_summary.days_ticked
        # The alarm *sets* agree line for line (ordering differs: the
        # router groups by (day, shard), the single engine by feed order).
        single_lines = sorted(single_alarms.read_text().splitlines())
        sharded_lines = sorted(
            (tmp_path / "sharded.jsonl").read_text().splitlines()
        )
        assert sharded_lines == single_lines
        # Summed per-day MOAS counts equal the single engine's series.
        composite = load_checkpoint(tmp_path / "cp.json").engine_state
        assert merged_daily_counts(composite["shards"]) == dict(
            single.engine.daily_counts
        )

    def test_four_shards_agree_with_two(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        logs = {}
        for shards in (2, 4):
            alarms = tmp_path / f"alarms_{shards}.jsonl"
            FeedRouter(
                [feed], alarms, tmp_path / f"cp_{shards}.json", shards=shards
            ).run()
            logs[shards] = sorted(alarms.read_text().splitlines())
        assert logs[2] == logs[4]

    def test_multi_feed_fan_in(self, tmp_path):
        # Two vantage-point feeds with different content; the reference is
        # one engine fed the same per-day interleaving the router uses
        # (feed 0's lines, then feed 1's, then the day's single tick).
        feed_a = tmp_path / "a.jsonl"
        feed_b = tmp_path / "b.jsonl"
        config_b = TraceConfig(
            days=40,
            faults=(FaultSpike(day=20, faulty_as=4200, n_prefixes=10),),
            n_background_prefixes=120,
            include_background=True,
        )
        write_trace_feed(feed_a, seed=7)
        write_trace_feed(feed_b, seed=11, config=config_b)
        by_day_a, by_day_b = {}, {}
        for records, bucket in (
            (read_feed(feed_a), by_day_a),
            (read_feed(feed_b), by_day_b),
        ):
            for record in records:
                bucket.setdefault(int(record.time), []).append(record)
        engine = StreamEngine(window=30.0)
        expected_alarms = []
        for day in sorted(by_day_a):
            for bucket in (by_day_a, by_day_b):
                for record in bucket.get(day, []):
                    if not record.is_tick:
                        expected_alarms.extend(
                            a.to_json_line() for a in engine.apply(record)
                        )
            engine.apply(by_day_a[day][-1])  # the day's tick, once
        router = FeedRouter(
            [feed_a, feed_b],
            tmp_path / "alarms.jsonl",
            tmp_path / "cp.json",
            shards=2,
        )
        summary = router.run()
        assert summary.alarms_emitted == engine.alarms_emitted
        assert summary.moas_active == engine.moas_active
        routed_lines = (tmp_path / "alarms.jsonl").read_text().splitlines()
        assert sorted(routed_lines) == sorted(expected_alarms)
        composite = load_checkpoint(tmp_path / "cp.json").engine_state
        assert merged_daily_counts(composite["shards"]) == dict(
            engine.daily_counts
        )

    def test_disagreeing_feed_days_refused(self, tmp_path):
        feed_a = tmp_path / "a.jsonl"
        feed_b = tmp_path / "b.jsonl"
        write_trace_feed(
            feed_a,
            config=TraceConfig(
                days=5, faults=(), n_background_prefixes=50,
                include_background=True,
            ),
        )
        # feed_b's first tick is day 3: the vantage points disagree.
        records = [r for r in read_feed(feed_a) if r.time >= 3.0]
        with FeedWriter(feed_b) as writer:
            writer.write_all(records)
        with pytest.raises(RouterError, match="disagree"):
            FeedRouter(
                [feed_a, feed_b], tmp_path / "alarms.jsonl", shards=2
            ).run()


class TestShardedResume:
    def _expected(self, tmp_path, shards=2):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        alarms = tmp_path / "alarms_full.jsonl"
        FeedRouter(
            [feed], alarms, tmp_path / "cp_full.json", shards=shards,
            checkpoint_every=300,
        ).run()
        return feed, alarms.read_bytes()

    def test_interrupt_and_resume_is_bit_identical(self, tmp_path):
        feed, expected = self._expected(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        interrupted = FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300,
            max_records=1500,
        ).run()
        assert interrupted.stopped is True
        resumed = FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300
        ).run(resume=True)
        assert resumed.eof is True
        assert alarms.read_bytes() == expected

    def test_double_interruption_still_bit_identical(self, tmp_path):
        feed, expected = self._expected(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300,
            max_records=1000,
        ).run()
        FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300,
            max_records=1000,
        ).run(resume=True)
        FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300
        ).run(resume=True)
        assert alarms.read_bytes() == expected

    def test_orphan_alarm_lines_rolled_back(self, tmp_path):
        feed, expected = self._expected(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300,
            max_records=1500,
        ).run()
        with alarms.open("a") as handle:
            handle.write('{"orphan": "line"}\n')
        FeedRouter(
            [feed], alarms, cp, shards=2, checkpoint_every=300
        ).run(resume=True)
        assert alarms.read_bytes() == expected

    def test_shard_count_mismatch_refused(self, tmp_path):
        feed, _ = self._expected(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        FeedRouter(
            [feed], alarms, cp, shards=2, max_records=1500
        ).run()
        with pytest.raises(CheckpointError, match="2 shards"):
            FeedRouter([feed], alarms, cp, shards=3).run(resume=True)

    def test_single_engine_checkpoint_refused(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(feed, alarms, cp, max_records=1500).run()
        with pytest.raises(CheckpointError, match="single-engine"):
            FeedRouter([feed], alarms, cp, shards=2).run(resume=True)

    def test_feed_count_mismatch_refused(self, tmp_path):
        feed, _ = self._expected(tmp_path)
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        FeedRouter(
            [feed], alarms, cp, shards=2, max_records=1500
        ).run()
        with pytest.raises(CheckpointError, match="feeds"):
            FeedRouter(
                [feed, feed], alarms, cp, shards=2
            ).run(resume=True)


class TestRouterCli:
    def test_sigterm_then_resume_is_bit_identical(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        write_trace_feed(feed)
        expected = tmp_path / "alarms_full.jsonl"
        FeedRouter(
            [feed], expected, tmp_path / "cp_full.json", shards=2,
            checkpoint_every=300,
        ).run()

        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        env = dict(os.environ, PYTHONPATH="src")
        cmd = [
            sys.executable, "-m", "repro", "stream", "run", str(feed),
            "--alarms", str(alarms), "--checkpoint", str(cp),
            "--shards", "2", "--checkpoint-every", "300",
            "--throttle", "0.1",
        ]
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(1.5)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "resume with --resume" in out
        interrupted = load_checkpoint(cp)
        assert 0 < interrupted.offset
        assert interrupted.engine_state["shard_count"] == 2

        resume_cmd = cmd[:14] + ["--resume"]  # drop throttle, keep paths
        done = subprocess.run(
            resume_cmd, env=env, capture_output=True, text=True, timeout=120
        )
        assert done.returncode == 0, done.stderr
        assert alarms.read_bytes() == expected.read_bytes()
        assert list(tmp_path.glob("*.tmp")) == []

    def test_follow_with_shards_rejected(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        feed.write_text("")
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro", "stream", "run", str(feed),
                "--alarms", str(tmp_path / "a.jsonl"), "--shards", "2",
                "--follow",
            ],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 2
        assert "not supported" in proc.stderr
