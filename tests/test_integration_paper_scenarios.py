"""Integration tests replaying the paper's own worked examples.

Each test builds the exact scenario of one of the paper's figures and
asserts the behaviour the paper describes.
"""

import pytest

from repro.bgp.network import Network
from repro.core.alarms import AlarmKind, AlarmLog
from repro.core.checker import MoasChecker
from repro.core.moas_list import MoasList, extract_moas_list, moas_communities
from repro.core.monitor import OfflineMonitor
from repro.core.origin_verification import (
    DnsOracle,
    GroundTruthOracle,
    PrefixOriginRegistry,
    build_moas_zone,
)
from repro.dnssub.resolver import Resolver
from repro.net.addresses import Prefix
from repro.topology import ASGraph
from repro.topology.inference import infer_from_table
from repro.topology.routeviews import parse_table_dump

PREFIX = Prefix.parse("10.2.0.0/16")


class TestFigure1_Origination:
    """AS 4 originates 10.2/16; AS X learns paths (Y 4) and (Z 4)."""

    def test_two_paths_one_origin(self):
        # X=1, Y=2, Z=3, origin AS 4.
        graph = ASGraph.from_edges([(1, 2), (1, 3), (2, 4), (3, 4)], transit=[2, 3])
        net = Network(graph)
        net.establish_sessions()
        net.originate(4, PREFIX)
        net.run_to_convergence()
        candidates = net.speaker(1).adj_rib_in.routes_for_prefix(PREFIX)
        paths = {tuple(c.attributes.as_path.asns()) for c in candidates}
        assert paths == {(2, 4), (3, 4)}
        assert net.speaker(1).best_origin(PREFIX) == 4


class TestFigure2_ValidMoas:
    """10.2/16 originated by both AS 4 and AS 226 (multi-homing)."""

    def test_moas_visible_at_remote_as(self):
        graph = ASGraph.from_edges(
            [(1, 2), (1, 3), (2, 4), (3, 226)], transit=[2, 3]
        )
        net = Network(graph)
        net.establish_sessions()
        communities = moas_communities([4, 226])
        net.originate(4, PREFIX, communities=communities)
        net.originate(226, PREFIX, communities=communities)
        net.run_to_convergence()
        candidates = net.speaker(1).adj_rib_in.routes_for_prefix(PREFIX)
        origins = {c.origin_asn for c in candidates}
        assert origins == {4, 226}
        # Both announcements carry the same list: no conflict.
        lists = {extract_moas_list(c.attributes) for c in candidates}
        assert lists == {MoasList([4, 226])}


class TestFigure3_TrafficHijack:
    """AS 52 falsely originates; AS X prefers the shorter bogus route."""

    def test_hijack_without_detection(self):
        # X=1 peers with Y=2, Z=3 and the attacker 52 directly; genuine
        # origin AS 4 is two hops away.
        graph = ASGraph.from_edges(
            [(1, 2), (1, 3), (2, 4), (3, 4), (1, 52)], transit=[2, 3]
        )
        net = Network(graph)
        net.establish_sessions()
        net.originate(4, PREFIX)
        net.run_to_convergence()
        net.originate(52, PREFIX)
        net.run_to_convergence()
        # Path (52) beats (2 4)/(3 4) on length: traffic is hijacked.
        assert net.speaker(1).best_origin(PREFIX) == 52

    def test_hijack_detected_with_moas_checking(self):
        graph = ASGraph.from_edges(
            [(1, 2), (1, 3), (2, 4), (3, 4), (1, 52)], transit=[2, 3]
        )
        registry = PrefixOriginRegistry()
        registry.register(PREFIX, [4])
        log = AlarmLog()
        net = Network(graph)
        MoasChecker(oracle=GroundTruthOracle(registry), alarm_log=log).attach(
            net.speaker(1)
        )
        net.establish_sessions()
        net.originate(4, PREFIX)
        net.run_to_convergence()
        net.originate(52, PREFIX)
        net.run_to_convergence()
        assert net.speaker(1).best_origin(PREFIX) == 4
        assert log.suspects() == frozenset({52})


class TestFigure6_MoasListScenario:
    """AS 1 and AS 2 share p with list {1,2}; AS Z=5 forges {1,2,Z};
    AS X=4 observes the inconsistency and raises an alarm."""

    def test_alarm_at_as_x(self, figure6_graph):
        registry = PrefixOriginRegistry()
        registry.register(PREFIX, [1, 2])
        log = AlarmLog()
        net = Network(figure6_graph)
        MoasChecker(oracle=GroundTruthOracle(registry), alarm_log=log).attach(
            net.speaker(4)
        )
        net.establish_sessions()
        communities = moas_communities([1, 2])
        net.originate(1, PREFIX, communities=communities)
        net.originate(2, PREFIX, communities=communities)
        net.run_to_convergence()
        net.originate(5, PREFIX, communities=moas_communities([1, 2, 5]))
        net.run_to_convergence()
        inconsistent = [
            a for a in log if a.kind is AlarmKind.INCONSISTENT_LISTS
        ]
        assert inconsistent
        alarm = inconsistent[0]
        assert alarm.detector == 4
        assert alarm.observed_list == MoasList([1, 2, 5]) or (
            alarm.conflicting_list == MoasList([1, 2, 5])
        )


class TestSection44_DnsVerification:
    """The full §4.4 pipeline: alarm → DNS MOASRR lookup → suppression."""

    def test_dns_backed_suppression(self, chain_graph):
        registry = PrefixOriginRegistry()
        registry.register(PREFIX, [1])
        resolver = Resolver()
        resolver.host_zone(build_moas_zone(registry))
        oracle = DnsOracle(resolver)
        net = Network(chain_graph)
        for asn in (2, 3, 4):
            MoasChecker(oracle=oracle).attach(net.speaker(asn))
        net.establish_sessions()
        net.originate(1, PREFIX)
        net.run_to_convergence()
        net.originate(5, PREFIX)
        net.run_to_convergence()
        assert net.best_origins(PREFIX)[4] == 1
        assert oracle.lookups >= 1
        assert resolver.queries >= 1


class TestSection51_TopologyPipeline:
    """Dump → inference → the paper's example adjacency."""

    def test_dump_to_graph(self):
        dump = (
            "# routeviews-dump date=2001-04-06 collector=oregon\n"
            "10.2.0.0/16 | 1239 | 1239 6453 4621\n"
            "192.0.2.0/24 | 1239 | 1239 701\n"
        )
        result = infer_from_table(parse_table_dump(dump))
        assert result.graph.has_link(1239, 6453)
        assert result.graph.has_link(6453, 4621)
        assert 6453 in result.transit


class TestOfflineMonitorPipeline:
    """§4.2's off-line deployment: dumps in, conflict reports out."""

    def test_monitor_flags_april_2001_style_fault(self):
        dump = (
            "10.2.0.0/16 | 7 | 7 4\n"
            "10.2.0.0/16 | 8 | 8 15412\n"  # the C&W-style false origin
            "192.0.2.0/24 | 7 | 7 9\n"
        )
        registry = PrefixOriginRegistry()
        registry.register(PREFIX, [4])
        monitor = OfflineMonitor(registry=registry)
        report = monitor.check_table(parse_table_dump(dump))
        conflicted = [f for f in report.findings if not f.consistent]
        assert len(conflicted) == 1
        assert conflicted[0].unauthorised_origins == frozenset({15412})
