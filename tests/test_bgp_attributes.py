"""Unit and property tests for BGP path attributes."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
)
from repro.bgp.errors import AttributeError_

asns = st.integers(min_value=1, max_value=65535)
asn_lists = st.lists(asns, min_size=1, max_size=8)


class TestAsPathSegment:
    def test_empty_segment_rejected(self):
        with pytest.raises(AttributeError_):
            AsPathSegment(SegmentType.AS_SEQUENCE, [])

    def test_as_set_is_canonical(self):
        a = AsPathSegment(SegmentType.AS_SET, [3, 1, 2, 1])
        b = AsPathSegment(SegmentType.AS_SET, [1, 2, 3])
        assert a == b
        assert hash(a) == hash(b)

    def test_sequence_preserves_order(self):
        seg = AsPathSegment(SegmentType.AS_SEQUENCE, [3, 1, 2])
        assert seg.asns == (3, 1, 2)

    def test_length_contribution(self):
        seq = AsPathSegment(SegmentType.AS_SEQUENCE, [1, 2, 3])
        as_set = AsPathSegment(SegmentType.AS_SET, [1, 2, 3])
        assert seq.path_length_contribution == 3
        assert as_set.path_length_contribution == 1

    def test_membership(self):
        seg = AsPathSegment(SegmentType.AS_SEQUENCE, [1, 2])
        assert 1 in seg
        assert 3 not in seg

    def test_immutable(self):
        seg = AsPathSegment(SegmentType.AS_SEQUENCE, [1])
        with pytest.raises(AttributeError):
            seg.asns = (2,)


class TestAsPath:
    def test_empty_path(self):
        path = AsPath()
        assert path.is_empty
        assert path.length == 0
        assert path.origin_asn is None
        assert path.origin_asns() == frozenset()
        assert path.first_asn is None

    def test_from_asns(self):
        path = AsPath.from_asns([1, 2, 3])
        assert list(path.asns()) == [1, 2, 3]
        assert path.length == 3

    def test_from_empty_asns(self):
        assert AsPath.from_asns([]).is_empty

    def test_origin_is_rightmost(self):
        # The paper's example: path (1239, 6453, 4621) originates at 4621.
        path = AsPath.from_asns([1239, 6453, 4621])
        assert path.origin_asn == 4621
        assert path.first_asn == 1239

    def test_origin_of_aggregated_path_is_set(self):
        path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(SegmentType.AS_SET, [2, 3]),
            ]
        )
        assert path.origin_asn is None
        assert path.origin_asns() == frozenset({2, 3})

    def test_prepend(self):
        path = AsPath.from_asns([2, 3]).prepend(1)
        assert list(path.asns()) == [1, 2, 3]

    def test_prepend_onto_empty(self):
        assert list(AsPath().prepend(7).asns()) == [7]

    def test_prepend_onto_leading_set_makes_new_segment(self):
        path = AsPath([AsPathSegment(SegmentType.AS_SET, [2, 3])]).prepend(1)
        assert path.segments[0].kind is SegmentType.AS_SEQUENCE
        assert path.segments[0].asns == (1,)
        assert path.length == 2

    def test_membership_spans_segments(self):
        path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(SegmentType.AS_SET, [2, 3]),
            ]
        )
        assert 3 in path
        assert 4 not in path

    def test_aggregate_common_head(self):
        merged = AsPath.aggregate(
            [AsPath.from_asns([1, 2, 3]), AsPath.from_asns([1, 2, 4])]
        )
        assert merged.segments[0] == AsPathSegment(SegmentType.AS_SEQUENCE, [1, 2])
        assert merged.segments[1] == AsPathSegment(SegmentType.AS_SET, [3, 4])

    def test_aggregate_identical_paths(self):
        p = AsPath.from_asns([1, 2])
        assert AsPath.aggregate([p, p]) == p

    def test_aggregate_single(self):
        p = AsPath.from_asns([1])
        assert AsPath.aggregate([p]) is p

    def test_aggregate_empty(self):
        assert AsPath.aggregate([]).is_empty

    @given(asn_lists)
    def test_prepend_increases_length_by_one(self, seq):
        path = AsPath.from_asns(seq)
        assert path.prepend(42).length == path.length + 1

    @given(asn_lists, asn_lists)
    def test_aggregate_covers_all_asns(self, a, b):
        merged = AsPath.aggregate([AsPath.from_asns(a), AsPath.from_asns(b)])
        assert set(merged.asns()) == set(a) | set(b)


class TestCommunity:
    def test_encode_decode_roundtrip(self):
        c = Community(65000, 0x00FF)
        assert Community.from_u32(c.to_u32()) == c

    def test_u32_layout(self):
        assert Community(1, 2).to_u32() == (1 << 16) | 2

    def test_out_of_range_rejected(self):
        with pytest.raises(AttributeError_):
            Community(0x10000, 0)
        with pytest.raises(AttributeError_):
            Community(0, 0x10000)
        with pytest.raises(AttributeError_):
            Community.from_u32(1 << 32)

    def test_str(self):
        assert str(Community(65000, 255)) == "65000:255"

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_u32_roundtrip(self, raw):
        assert Community.from_u32(raw).to_u32() == raw


class TestPathAttributes:
    def test_defaults(self):
        attrs = PathAttributes()
        assert attrs.origin is Origin.IGP
        assert attrs.local_pref == PathAttributes.DEFAULT_LOCAL_PREF
        assert attrs.as_path.is_empty
        assert attrs.communities == frozenset()

    def test_negative_med_rejected(self):
        with pytest.raises(AttributeError_):
            PathAttributes(med=-1)

    def test_negative_local_pref_rejected(self):
        with pytest.raises(AttributeError_):
            PathAttributes(local_pref=-1)

    def test_replace_unknown_field_rejected(self):
        with pytest.raises(AttributeError_):
            PathAttributes().replace(nonsense=1)

    def test_replace_produces_new_object(self):
        a = PathAttributes(med=1)
        b = a.replace(med=2)
        assert a.med == 1
        assert b.med == 2

    def test_with_prepended(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([2]))
        out = attrs.with_prepended(1, next_hop=1)
        assert list(out.as_path.asns()) == [1, 2]
        assert out.next_hop == 1

    def test_community_manipulation(self):
        c1, c2 = Community(1, 1), Community(2, 2)
        attrs = PathAttributes(communities=[c1])
        assert attrs.add_communities([c2]).communities == {c1, c2}
        assert attrs.without_communities().communities == frozenset()

    def test_communities_of_value(self):
        attrs = PathAttributes(communities=[Community(1, 9), Community(2, 9), Community(3, 7)])
        assert attrs.communities_of_value(9) == {Community(1, 9), Community(2, 9)}

    def test_equality_and_hash(self):
        a = PathAttributes(as_path=AsPath.from_asns([1]), med=3)
        b = PathAttributes(as_path=AsPath.from_asns([1]), med=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_origin_asn_passthrough(self):
        attrs = PathAttributes(as_path=AsPath.from_asns([5, 6]))
        assert attrs.origin_asn == 6

    def test_immutable(self):
        with pytest.raises(AttributeError):
            PathAttributes().med = 5
