"""Unit tests for index segments, the manifest, and directory hygiene."""

from __future__ import annotations

import json

import pytest

from repro.query.model import canonical_json
from repro.query.segments import (
    MANIFEST_NAME,
    assemble_segment,
    load_manifest,
    load_segment,
    manifest_doc,
    manifest_entry,
    manifest_etag,
    reap_unreferenced,
    segment_digest,
    segment_name,
    write_manifest,
    write_segment,
)
from repro.query.track import QueryError

START = {"records": 0, "alarm_bytes": 0, "feed_bytes": 0}
END = {"records": 10, "alarm_bytes": 120, "feed_bytes": 900}

EVENTS = [
    ["o", 1.0, "10.0.1.0/24", [7]],
    ["o", 2.0, "10.0.0.0/24", [3, 7]],
    ["d", 2, 1],
    ["d", 2, 2],  # a second shard's same-day contribution
]
ROWS = [
    ("10.0.0.0/24", [2.5, "inconsistent-lists", [3, 7], [9], None]),
    ("10.0.0.0/24", [3.5, "origin-not-in-own-list", [3], None, 5]),
]


class TestAssembleSegment:
    def test_empty_boundary_returns_none(self):
        assert assemble_segment(1, START, END, [], []) is None

    def test_document_shape_and_ordering(self):
        doc = assemble_segment(3, START, END, EVENTS, ROWS)
        assert doc["seq"] == 3
        assert doc["start"] == START and doc["end"] == END
        # prefixes sorted; same-day d-events summed
        assert [prefix for prefix, _ in doc["prefixes"]] == [
            "10.0.0.0/24", "10.0.1.0/24",
        ]
        assert doc["moas_days"] == [[2, 3]]
        assert doc["alarm_days"] == [[2, 1], [3, 1]]
        by_prefix = dict(doc["prefixes"])
        assert by_prefix["10.0.0.0/24"]["origins"] == [[2.0, [3, 7]]]
        assert len(by_prefix["10.0.0.0/24"]["alarms"]) == 2

    def test_canonical_json_round_trips(self):
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        assert json.loads(canonical_json(doc)) == doc


class TestManifest:
    def test_entry_counts_events_and_digests(self):
        doc = assemble_segment(2, START, END, EVENTS, ROWS)
        entry = manifest_entry(doc)
        assert entry["name"] == segment_name(2) == "seg-000002.json"
        assert entry["records"] == 10
        assert entry["events"] == 4  # 2 transitions + 2 alarm rows
        assert entry["digest"] == segment_digest(doc)

    def test_etag_changes_with_generation(self):
        doc1 = manifest_doc(1, "single", END, [])
        doc2 = manifest_doc(2, "single", END, [])
        assert manifest_etag(doc1) != manifest_etag(doc2)
        assert manifest_etag(doc1).startswith('"1-')


class TestDurableWrites:
    def test_write_and_load_round_trip(self, tmp_path):
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        write_segment(tmp_path, doc)
        loaded = load_segment(tmp_path / segment_name(1), segment_digest(doc))
        assert loaded == doc
        manifest = manifest_doc(1, "single", END, [manifest_entry(doc)])
        write_manifest(tmp_path, manifest)
        assert load_manifest(tmp_path) == manifest
        assert list(tmp_path.glob("*.tmp")) == []

    def test_missing_manifest_is_none(self, tmp_path):
        assert load_manifest(tmp_path) is None

    def test_torn_manifest_refuses(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"format": "repro-query-man')
        with pytest.raises(QueryError, match="refusing"):
            load_manifest(tmp_path)

    def test_foreign_manifest_refuses(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text('{"format": "something-else"}\n')
        with pytest.raises(QueryError, match="not a repro-query-manifest"):
            load_manifest(tmp_path)

    def test_manifest_missing_keys_refuses(self, tmp_path):
        write_manifest(tmp_path, manifest_doc(1, "single", END, []))
        doc = json.loads((tmp_path / MANIFEST_NAME).read_text())
        del doc["end"]
        (tmp_path / MANIFEST_NAME).write_text(json.dumps(doc) + "\n")
        with pytest.raises(QueryError, match="missing 'end'"):
            load_manifest(tmp_path)

    def test_segment_digest_mismatch_refuses(self, tmp_path):
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        write_segment(tmp_path, doc)
        with pytest.raises(QueryError, match="digest mismatch"):
            load_segment(tmp_path / segment_name(1), "0" * 16)

    def test_corrupt_segment_refuses(self, tmp_path):
        target = tmp_path / segment_name(1)
        target.write_text("not json")
        with pytest.raises(QueryError, match="corrupt index segment"):
            load_segment(target)

    def test_fault_hook_fires_at_every_point(self, tmp_path):
        seen = []
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        write_segment(tmp_path, doc, fault=seen.append)
        write_manifest(
            tmp_path, manifest_doc(1, "single", END, []), fault=seen.append
        )
        assert seen == [
            "segment-pre-fsync", "segment-pre-replace", "segment-pre-dirsync",
            "manifest-pre-fsync", "manifest-pre-replace", "manifest-pre-dirsync",
        ]


class TestReap:
    def test_removes_tmp_and_orphan_segments(self, tmp_path):
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        write_segment(tmp_path, doc)
        orphan = assemble_segment(2, END, dict(END, records=20), EVENTS, [])
        write_segment(tmp_path, orphan)
        (tmp_path / "seg-000009.json.tmp").write_text("partial")
        manifest = manifest_doc(1, "single", END, [manifest_entry(doc)])
        reaped = reap_unreferenced(tmp_path, manifest)
        assert sorted(reaped) == ["seg-000002.json", "seg-000009.json.tmp"]
        assert (tmp_path / segment_name(1)).exists()

    def test_no_manifest_reaps_everything(self, tmp_path):
        doc = assemble_segment(1, START, END, EVENTS, ROWS)
        write_segment(tmp_path, doc)
        assert reap_unreferenced(tmp_path, None) == [segment_name(1)]

    def test_missing_directory_is_noop(self, tmp_path):
        assert reap_unreferenced(tmp_path / "nope", None) == []
