"""Unit tests for the deterministic event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.eventsim.event import Event
from repro.eventsim.queue import EventQueue


def make_event(time=0.0, priority=0):
    return Event(time, lambda: None, priority=priority)


class TestEventQueue:
    def test_empty_queue(self):
        q = EventQueue()
        assert len(q) == 0
        assert not q
        assert q.pop() is None
        assert q.peek_time() is None

    def test_pop_in_time_order(self):
        q = EventQueue()
        late = make_event(2.0)
        early = make_event(1.0)
        q.push(late)
        q.push(early)
        assert q.pop() is early
        assert q.pop() is late

    def test_same_time_pops_in_insertion_order(self):
        q = EventQueue()
        events = [make_event(1.0) for _ in range(10)]
        for event in events:
            q.push(event)
        popped = [q.pop() for _ in range(10)]
        assert popped == events

    def test_priority_orders_within_same_time(self):
        q = EventQueue()
        low_urgency = make_event(1.0, priority=1)
        high_urgency = make_event(1.0, priority=0)
        q.push(low_urgency)
        q.push(high_urgency)
        assert q.pop() is high_urgency

    def test_double_push_rejected(self):
        q = EventQueue()
        event = make_event()
        q.push(event)
        with pytest.raises(ValueError):
            q.push(event)

    def test_cancelled_events_skipped_on_pop(self):
        q = EventQueue()
        a, b = make_event(1.0), make_event(2.0)
        q.push(a)
        q.push(b)
        a.cancel()
        assert q.pop() is b

    def test_peek_time_skips_cancelled(self):
        q = EventQueue()
        a, b = make_event(1.0), make_event(2.0)
        q.push(a)
        q.push(b)
        a.cancel()
        assert q.peek_time() == 2.0

    def test_live_count_tracks_cancellation(self):
        q = EventQueue()
        a = make_event(1.0)
        q.push(a)
        q.push(make_event(2.0))
        # cancel() notifies the queue itself; no manual bookkeeping call.
        a.cancel()
        assert len(q) == 1

    def test_cancel_is_idempotent_for_live_count(self):
        q = EventQueue()
        a = make_event(1.0)
        q.push(a)
        q.push(make_event(2.0))
        a.cancel()
        a.cancel()
        assert len(q) == 1

    def test_cancel_after_pop_does_not_touch_live_count(self):
        q = EventQueue()
        a, b = make_event(1.0), make_event(2.0)
        q.push(a)
        q.push(b)
        popped = q.pop()
        popped.cancel()
        assert len(q) == 1

    def test_cancel_after_clear_does_not_touch_live_count(self):
        q = EventQueue()
        a = make_event(1.0)
        q.push(a)
        q.clear()
        q.push(make_event(2.0))
        a.cancel()
        assert len(q) == 1

    def test_drain_yields_in_order_and_empties(self):
        q = EventQueue()
        events = [make_event(t) for t in (3.0, 1.0, 2.0)]
        for event in events:
            q.push(event)
        drained = list(q.drain())
        assert [e.time for e in drained] == [1.0, 2.0, 3.0]
        assert len(q) == 0

    def test_clear(self):
        q = EventQueue()
        q.push(make_event())
        q.clear()
        assert not q
        assert q.pop() is None

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_pop_order_is_sorted_by_time(self, times):
        q = EventQueue()
        for t in times:
            q.push(make_event(t))
        popped = []
        while q:
            popped.append(q.pop().time)
        assert popped == sorted(popped)
        assert len(popped) == len(times)
