"""Property-based integration tests: invariants of converged BGP state.

Hypothesis generates random connected topologies and origin placements;
after convergence the routing state must satisfy path-vector invariants
regardless of the draw:

* every installed AS path is a real walk in the peering graph;
* paths are loop-free (no AS appears twice);
* the path recorded at an AS starts at one of its actual neighbours and
  ends at the origin;
* installed path lengths are bounded below by graph distance;
* the data plane delivers from every AS.
"""

import networkx as nx
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.forwarding import DeliveryOutcome, trace_packet
from repro.bgp.network import Network
from repro.net.addresses import Prefix
from repro.topology import ASGraph

P = Prefix.parse("10.0.0.0/16")


@st.composite
def connected_topologies(draw):
    """A random connected AS graph of 4-12 nodes plus an origin choice."""
    n = draw(st.integers(min_value=4, max_value=12))
    asns = [10 * (i + 1) for i in range(n)]
    # A random spanning tree guarantees connectivity...
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((min(asns[i], asns[j]), max(asns[i], asns[j])))
    # ...plus random extra edges for mesh-ness.
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            edges.add((min(asns[i], asns[j]), max(asns[i], asns[j])))
    origin = asns[draw(st.integers(min_value=0, max_value=n - 1))]
    return ASGraph.from_edges(sorted(edges)), origin


def converge(graph, origin):
    net = Network(graph)
    net.establish_sessions()
    net.originate(origin, P)
    net.run_to_convergence()
    return net


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies())
def test_paths_are_real_walks(draw):
    graph, origin = draw
    net = converge(graph, origin)
    for asn in graph.asns():
        best = net.speaker(asn).best_route(P)
        assert best is not None, f"AS{asn} has no route"
        if best.is_local:
            continue
        path = [asn] + list(best.attributes.as_path.asns())
        for left, right in zip(path, path[1:]):
            assert graph.has_link(left, right), (
                f"AS{asn} installed a path using nonexistent link "
                f"{left}-{right}"
            )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies())
def test_paths_are_loop_free_and_end_at_origin(draw):
    graph, origin = draw
    net = converge(graph, origin)
    for asn in graph.asns():
        best = net.speaker(asn).best_route(P)
        if best.is_local:
            assert asn == origin
            continue
        path = list(best.attributes.as_path.asns())
        assert len(path) == len(set(path)), f"loop in {path}"
        assert asn not in path
        assert path[-1] == origin
        assert path[0] == best.peer


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies())
def test_path_lengths_bounded_by_graph_distance(draw):
    graph, origin = draw
    net = converge(graph, origin)
    nxg = graph.to_networkx()
    distances = nx.single_source_shortest_path_length(nxg, origin)
    for asn in graph.asns():
        best = net.speaker(asn).best_route(P)
        length = best.attributes.as_path.length
        assert length >= distances[asn], (
            f"AS{asn} claims a path shorter than the graph distance"
        )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies())
def test_data_plane_delivers_everywhere(draw):
    graph, origin = draw
    net = converge(graph, origin)
    for asn in graph.asns():
        trace = trace_packet(net, asn, P, legitimate_origins=[origin])
        assert trace.outcome is DeliveryOutcome.DELIVERED
        assert trace.final_as == origin


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(connected_topologies())
def test_withdrawal_leaves_no_ghost_routes(draw):
    """After the origin withdraws, no AS may retain any route — the
    regression test for stale-route-after-loop-detection."""
    graph, origin = draw
    net = converge(graph, origin)
    net.speaker(origin).withdraw_origination(P)
    net.run_to_convergence()
    for asn in graph.asns():
        assert net.speaker(asn).best_route(P) is None
