"""Unit tests for point-to-point links."""

import pytest

from repro.net.link import Link, LinkState


def wire(sim, delay=0.5):
    link = Link(sim, "a", "b", delay=delay)
    inbox_a, inbox_b = [], []
    link.attach("a", lambda sender, msg: inbox_a.append((sim.now, sender, msg)))
    link.attach("b", lambda sender, msg: inbox_b.append((sim.now, sender, msg)))
    return link, inbox_a, inbox_b


class TestConstruction:
    def test_same_endpoints_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "a", "a")

    def test_non_positive_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "a", "b", delay=0.0)

    def test_other_end(self, sim):
        link = Link(sim, "a", "b")
        assert link.other_end("a") == "b"
        assert link.other_end("b") == "a"
        with pytest.raises(ValueError):
            link.other_end("c")

    def test_attach_unknown_endpoint_rejected(self, sim):
        link = Link(sim, "a", "b")
        with pytest.raises(ValueError):
            link.attach("c", lambda s, m: None)


class TestDelivery:
    def test_message_arrives_after_delay(self, sim):
        link, _, inbox_b = wire(sim, delay=0.5)
        link.send("a", "hello")
        sim.run()
        assert inbox_b == [(0.5, "a", "hello")]

    def test_bidirectional(self, sim):
        link, inbox_a, inbox_b = wire(sim)
        link.send("a", "to-b")
        link.send("b", "to-a")
        sim.run()
        assert [m for _, _, m in inbox_b] == ["to-b"]
        assert [m for _, _, m in inbox_a] == ["to-a"]

    def test_fifo_order(self, sim):
        link, _, inbox_b = wire(sim)
        for i in range(5):
            link.send("a", i)
        sim.run()
        assert [m for _, _, m in inbox_b] == [0, 1, 2, 3, 4]

    def test_missing_receiver_raises(self, sim):
        link = Link(sim, "a", "b")
        link.send("a", "x")
        with pytest.raises(RuntimeError):
            sim.run()

    def test_counters(self, sim):
        link, _, _ = wire(sim)
        link.send("a", "x")
        sim.run()
        assert link.messages_sent == 1
        assert link.messages_dropped == 0


class TestFailure:
    def test_send_on_down_link_dropped(self, sim):
        link, _, inbox_b = wire(sim)
        link.fail()
        assert link.send("a", "x") is False
        sim.run()
        assert inbox_b == []
        assert link.messages_dropped == 1

    def test_in_flight_messages_lost_on_failure(self, sim):
        link, _, inbox_b = wire(sim, delay=1.0)
        link.send("a", "x")
        sim.schedule_at(0.5, link.fail)
        sim.run()
        assert inbox_b == []
        assert link.messages_dropped == 1

    def test_restore_allows_new_traffic(self, sim):
        link, _, inbox_b = wire(sim)
        link.fail()
        link.restore()
        assert link.state is LinkState.UP
        link.send("a", "x")
        sim.run()
        assert [m for _, _, m in inbox_b] == ["x"]

    def test_pre_failure_messages_lost_even_after_restore(self, sim):
        # fail at 0.2, restore at 0.4; message sent at 0 (arriving 1.0) was
        # on the wire during the outage and must not be resurrected.
        link, _, inbox_b = wire(sim, delay=1.0)
        link.send("a", "x")
        sim.schedule_at(0.2, link.fail)
        sim.schedule_at(0.4, link.restore)
        sim.run()
        assert inbox_b == []
