"""Tests for sweeps and figure harnesses (small grids for speed)."""

import pytest

from repro.experiments.exp_effectiveness import figure9
from repro.experiments.exp_partial import figure11
from repro.experiments.exp_topology_size import figure10
from repro.experiments.runner import DeploymentKind
from repro.experiments.sweep import SweepConfig, run_sweep
from repro.topology.generators import generate_paper_topology

FRACS = (0.10, 0.30)


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestSweep:
    def test_point_grid(self, graph):
        result = run_sweep(
            SweepConfig(graph=graph, attacker_fractions=FRACS,
                        n_origin_sets=2, n_attacker_sets=2)
        )
        assert len(result.points) == 2
        assert result.points[0].runs == 4
        assert result.points[0].n_attackers == round(0.10 * len(graph))

    def test_point_statistics_consistent(self, graph):
        result = run_sweep(
            SweepConfig(graph=graph, attacker_fractions=FRACS,
                        n_origin_sets=2, n_attacker_sets=2)
        )
        for point in result.points:
            assert (
                point.min_poisoned_fraction
                <= point.mean_poisoned_fraction
                <= point.max_poisoned_fraction
            )
            assert 0.0 <= point.mean_poisoned_fraction <= 1.0

    def test_point_at_lookup(self, graph):
        result = run_sweep(SweepConfig(graph=graph, attacker_fractions=FRACS,
                                       n_origin_sets=1, n_attacker_sets=1))
        assert result.point_at(0.10).attacker_fraction == 0.10
        with pytest.raises(KeyError):
            result.point_at(0.99)

    def test_detection_beats_normal(self, graph):
        kwargs = dict(graph=graph, attacker_fractions=(0.30,),
                      n_origin_sets=3, n_attacker_sets=3)
        normal = run_sweep(SweepConfig(deployment=DeploymentKind.NONE, **kwargs))
        detect = run_sweep(SweepConfig(deployment=DeploymentKind.FULL, **kwargs))
        assert (
            detect.points[0].mean_poisoned_fraction
            < normal.points[0].mean_poisoned_fraction
        )

    def test_deterministic(self, graph):
        config = SweepConfig(graph=graph, attacker_fractions=FRACS,
                             n_origin_sets=2, n_attacker_sets=2, seed=5)
        a = run_sweep(config)
        b = run_sweep(config)
        assert [p.mean_poisoned_fraction for p in a.points] == [
            p.mean_poisoned_fraction for p in b.points
        ]

    def test_percent_series(self, graph):
        result = run_sweep(SweepConfig(graph=graph, attacker_fractions=FRACS,
                                       n_origin_sets=1, n_attacker_sets=1))
        series = result.as_percent_series()
        assert series[0][0] == 10.0


class TestFigureHarnesses:
    def test_figure9_structure(self, graph):
        result = figure9(
            graph=graph, origin_counts=(1,), attacker_fractions=(0.30,)
        )
        assert set(result.panels) == {1}
        normal, detect = result.panels[1]
        assert normal.deployment is DeploymentKind.NONE
        assert detect.deployment is DeploymentKind.FULL

    def test_figure9_headline_keys(self, graph):
        result = figure9(
            graph=graph, origin_counts=(1,), attacker_fractions=(0.05, 0.30)
        )
        headline = result.headline()
        assert set(headline) == {
            "normal@4%", "detect@4%", "normal@30%", "detect@30%",
        }
        assert headline["detect@30%"] <= headline["normal@30%"]

    def test_figure10_structure(self, graph):
        small = generate_paper_topology(25, seed=4)
        result = figure10(
            sizes=(25,), origin_counts=(1,), attacker_fractions=(0.30,),
            graphs={25: small},
        )
        assert set(result.panels[1]) == {25}
        assert result.detection_at(1, 25, 0.30) >= 0.0

    def test_figure11_structure(self, graph):
        result = figure11(
            sizes=(25,), attacker_fractions=(0.30,), graphs={25: graph}
        )
        curves = result.panels[25]
        assert [c.deployment for c in curves] == [
            DeploymentKind.NONE, DeploymentKind.PARTIAL, DeploymentKind.FULL,
        ]
        assert 0.0 <= result.reduction_from_partial(25, 0.30) <= 1.0

    def test_figure11_partial_between_none_and_full(self, graph):
        result = figure11(
            sizes=(25,), attacker_fractions=(0.30,), graphs={25: graph}
        )
        normal, partial, full = (
            c.points[0].mean_poisoned_fraction for c in result.panels[25]
        )
        assert full <= partial <= normal
