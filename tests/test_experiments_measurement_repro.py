"""Unit tests for the measurement-study figure harness."""

import random

import pytest

from repro.experiments.measurement_repro import (
    MeasurementStudyResult,
    figure4,
    figure5,
    run_measurement_study,
)
from repro.measurement.trace import FaultSpike, TraceConfig


def small_config():
    return TraceConfig(
        days=40,
        active_start=30,
        active_end=40,
        faults=(FaultSpike(day=20, faulty_as=8584, n_prefixes=25),),
        n_background_prefixes=100,
        n_origin_pool=200,
    )


class TestRunStudy:
    def test_result_structure(self):
        result = run_measurement_study(small_config(), seed=1,
                                       duration_cutoff=40)
        assert isinstance(result, MeasurementStudyResult)
        assert result.observer.days_observed() == 40
        assert result.summary.days_observed == 40

    def test_figure4_series_shape(self):
        result = run_measurement_study(small_config(), seed=1,
                                       duration_cutoff=40)
        series = result.figure4_series()
        assert len(series) == 40
        days = [d for d, _ in series]
        assert days == sorted(days)
        counts = dict(series)
        assert counts[20] > counts[19]  # the fault spike

    def test_figure5_histogram_shape(self):
        result = run_measurement_study(small_config(), seed=1,
                                       duration_cutoff=40)
        histogram = result.figure5_histogram()
        assert sum(histogram.values()) == result.tracker.total_cases()
        assert histogram.get(1, 0) >= 25  # at least the fault victims

    def test_deterministic(self):
        a = run_measurement_study(small_config(), seed=9, duration_cutoff=40)
        b = run_measurement_study(small_config(), seed=9, duration_cutoff=40)
        assert a.figure4_series() == b.figure4_series()
        assert a.figure5_histogram() == b.figure5_histogram()

    def test_seed_sensitivity(self):
        a = run_measurement_study(small_config(), seed=1, duration_cutoff=40)
        b = run_measurement_study(small_config(), seed=2, duration_cutoff=40)
        assert a.figure4_series() != b.figure4_series()


class TestConvenienceWrappers:
    def test_figure4_wrapper(self):
        series = figure4(small_config(), seed=1)
        assert len(series) == 40

    def test_figure5_wrapper(self):
        histogram = figure5(small_config(), seed=1)
        assert histogram
