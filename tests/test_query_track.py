"""Unit tests for origin-set tracking and byte-range replay."""

from __future__ import annotations

import pytest

from repro.net.addresses import Prefix
from repro.stream.feed import FeedRecord, FeedWriter
from repro.query.track import (
    OriginTracker,
    QueryError,
    alarm_row_from_line,
    alarm_rows_from_range,
    replay_feed_range,
    replay_router_range,
)

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def announce(prefix, origin, t=0.0):
    return FeedRecord(op="A", time=t, prefix=prefix, origin=origin)


def withdraw(prefix, origin, t=0.0):
    return FeedRecord(op="W", time=t, prefix=prefix, origin=origin)


def tick(t):
    return FeedRecord(op="T", time=t)


class TestOriginTracker:
    def test_announce_emits_transition_with_sorted_origins(self):
        tracker = OriginTracker()
        assert tracker.apply(announce(P1, 7)) == ["o", 0.0, "10.0.0.0/24", [7]]
        assert tracker.apply(announce(P1, 3, t=1.0)) == [
            "o", 1.0, "10.0.0.0/24", [3, 7],
        ]
        assert tracker.moas_active == 1

    def test_reannouncement_emits_nothing(self):
        tracker = OriginTracker()
        tracker.apply(announce(P1, 7))
        assert tracker.apply(announce(P1, 7, t=5.0)) is None
        assert tracker.moas_active == 0

    def test_unknown_withdraw_emits_nothing(self):
        tracker = OriginTracker()
        assert tracker.apply(withdraw(P1, 7)) is None
        tracker.apply(announce(P1, 7))
        assert tracker.apply(withdraw(P1, 9)) is None

    def test_withdraw_to_empty_deletes_and_emits_empty_set(self):
        tracker = OriginTracker()
        tracker.apply(announce(P1, 7))
        event = tracker.apply(withdraw(P1, 7, t=2.0))
        assert event == ["o", 2.0, "10.0.0.0/24", []]
        assert tracker.live == {}

    def test_moas_active_crossings(self):
        tracker = OriginTracker()
        tracker.apply(announce(P1, 1))
        tracker.apply(announce(P1, 2))
        tracker.apply(announce(P1, 3))
        assert tracker.moas_active == 1  # only the 1 -> 2 crossing counts
        tracker.apply(withdraw(P1, 3))
        assert tracker.moas_active == 1
        tracker.apply(withdraw(P1, 2))
        assert tracker.moas_active == 0

    def test_tick_emits_day_event(self):
        tracker = OriginTracker()
        tracker.apply(announce(P1, 1))
        tracker.apply(announce(P1, 2))
        tracker.apply(announce(P2, 9))
        assert tracker.apply(tick(3.0)) == ["d", 3, 1]

    def test_from_live_and_live_state_round_trip(self):
        tracker = OriginTracker()
        tracker.apply(announce(P1, 7))
        tracker.apply(announce(P1, 3))
        tracker.apply(announce(P2, 9))
        rebuilt = OriginTracker.from_live(tracker.live_state())
        assert rebuilt.live_state() == tracker.live_state()
        assert rebuilt.moas_active == tracker.moas_active

    def test_from_live_skips_empty_sets(self):
        rebuilt = OriginTracker.from_live({"10.0.0.0/24": [], "10.0.1.0/24": [5]})
        assert rebuilt.live_state() == {"10.0.1.0/24": [5]}


class TestAlarmRows:
    GOOD = (
        '{"kind":"inconsistent-lists","observed":[1,2],"prefix":"10.0.0.0/24",'
        '"time":3.5}'
    )

    def test_parses_canonical_line(self):
        prefix, row = alarm_row_from_line(self.GOOD)
        assert prefix == "10.0.0.0/24"
        assert row == [3.5, "inconsistent-lists", [1, 2], None, None]

    def test_malformed_line_raises_query_error(self):
        with pytest.raises(QueryError, match="malformed alarm line"):
            alarm_row_from_line("{broken")
        with pytest.raises(QueryError, match="malformed alarm line"):
            alarm_row_from_line('{"prefix": "10.0.0.0/24"}')

    def test_range_reads_line_aligned_bytes(self, tmp_path):
        log = tmp_path / "alarms.log"
        line = self.GOOD + "\n"
        log.write_text(line * 3)
        assert len(alarm_rows_from_range(log, 0, None)) == 3
        assert len(alarm_rows_from_range(log, len(line), len(line) * 2)) == 1
        assert alarm_rows_from_range(log, len(line) * 3, None) == []

    def test_range_past_eof_raises(self, tmp_path):
        log = tmp_path / "alarms.log"
        log.write_text(self.GOOD + "\n")
        with pytest.raises(QueryError, match="ends at byte"):
            alarm_rows_from_range(log, 0, 10_000)

    def test_misaligned_range_raises(self, tmp_path):
        log = tmp_path / "alarms.log"
        log.write_text(self.GOOD + "\n")
        with pytest.raises(QueryError, match="line boundary"):
            alarm_rows_from_range(log, 0, 5)

    def test_torn_tail_at_eof_is_dropped(self, tmp_path):
        log = tmp_path / "alarms.log"
        log.write_text(self.GOOD + "\n" + self.GOOD[:20])
        assert len(alarm_rows_from_range(log, 0, None)) == 1


class TestReplayFeedRange:
    def write_feed(self, path, records):
        with FeedWriter(path) as writer:
            return writer.write_all(records)

    def test_full_replay_counts_records_not_header(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        records = [announce(P1, 7), announce(P1, 3, t=1.0), tick(1.0)]
        self.write_feed(feed, records)
        tracker = OriginTracker()
        out = []
        assert replay_feed_range(feed, 0, None, tracker, out) == 3
        assert [event[0] for event in out] == ["o", "o", "d"]

    def test_range_replay_matches_tailer_offsets(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        self.write_feed(feed, [announce(P1, 7), tick(0.0), announce(P2, 9, t=1.0)])
        data = feed.read_bytes().splitlines(keepends=True)
        mid = len(data[0]) + len(data[1]) + len(data[2])  # header + 2 records
        tracker = OriginTracker()
        out = []
        assert replay_feed_range(feed, mid, None, tracker, out) == 1
        assert out == [["o", 1.0, "10.0.1.0/24", [9]]]

    def test_short_file_raises(self, tmp_path):
        feed = tmp_path / "feed.jsonl"
        self.write_feed(feed, [announce(P1, 7)])
        with pytest.raises(QueryError, match="ends at byte"):
            replay_feed_range(feed, 0, 10_000, OriginTracker(), [])


class TestReplayRouterRange:
    def write_feeds(self, tmp_path):
        """Two vantage feeds agreeing on days 0 and 1."""
        a = tmp_path / "feed_a.jsonl"
        b = tmp_path / "feed_b.jsonl"
        with FeedWriter(a) as writer:
            writer.write_all(
                [announce(P1, 7), tick(0.0), announce(P1, 3, t=1.0), tick(1.0)]
            )
        with FeedWriter(b) as writer:
            writer.write_all(
                [announce(P2, 9), tick(0.0), withdraw(P2, 9, t=1.0), tick(1.0)]
            )
        return a, b

    def test_interleaves_with_one_tick_per_day(self, tmp_path):
        a, b = self.write_feeds(tmp_path)
        tracker = OriginTracker()
        out = []
        # 4 announce/withdraw lines + 2 fleet ticks
        assert replay_router_range([a, b], [0, 0], None, tracker, out) == 6
        days = [event for event in out if event[0] == "d"]
        assert days == [["d", 0, 0], ["d", 1, 1]]

    def test_disagreeing_days_raise(self, tmp_path):
        a = tmp_path / "feed_a.jsonl"
        b = tmp_path / "feed_b.jsonl"
        with FeedWriter(a) as writer:
            writer.write_all([tick(0.0)])
        with FeedWriter(b) as writer:
            writer.write_all([tick(5.0)])
        with pytest.raises(QueryError, match="disagree"):
            replay_router_range([a, b], [0, 0], None, OriginTracker(), [])

    def test_count_mismatch_raises(self, tmp_path):
        a, b = self.write_feeds(tmp_path)
        with pytest.raises(QueryError, match="count mismatch"):
            replay_router_range([a, b], [0], None, OriginTracker(), [])
