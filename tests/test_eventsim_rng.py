"""Unit tests for named random streams."""

import pytest
from hypothesis import given, strategies as st

from repro.eventsim.rng import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_64_bit_range(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")

    def test_streams_are_independent(self):
        # Drawing from one stream must not perturb another.
        lone = RandomStreams(0)
        lone_draws = [lone.stream("target").random() for _ in range(5)]

        mixed = RandomStreams(0)
        mixed.stream("other").random()  # interleaved consumer
        mixed_draws = [mixed.stream("target").random() for _ in range(5)]
        assert lone_draws == mixed_draws

    def test_reproducible_across_instances(self):
        a = RandomStreams(7).stream("s").random()
        b = RandomStreams(7).stream("s").random()
        assert a == b

    def test_spawn_creates_derived_family(self):
        parent = RandomStreams(0)
        child1 = parent.spawn("run/1")
        child2 = parent.spawn("run/2")
        assert child1.stream("x").random() != child2.stream("x").random()
        # Same spawn name → same family.
        again = RandomStreams(0).spawn("run/1")
        assert again.stream("x").random() == RandomStreams(0).spawn("run/1").stream("x").random()

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).choice("s", [])

    def test_sample_too_large_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).sample("s", [1, 2], 3)

    def test_shuffle_returns_copy(self):
        streams = RandomStreams(0)
        original = [1, 2, 3, 4, 5]
        shuffled = streams.shuffle("s", original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_uniform_within_bounds(self):
        streams = RandomStreams(0)
        for _ in range(100):
            value = streams.uniform("u", 2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_expovariate_requires_positive_rate(self):
        with pytest.raises(ValueError):
            RandomStreams(0).expovariate("e", 0.0)

    def test_poisson_zero_lambda(self):
        assert RandomStreams(0).poisson("p", 0.0) == 0

    def test_poisson_negative_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(0).poisson("p", -1.0)

    def test_poisson_mean_roughly_lambda(self):
        streams = RandomStreams(0)
        draws = [streams.poisson("p", 5.0) for _ in range(2000)]
        mean = sum(draws) / len(draws)
        assert 4.5 < mean < 5.5

    def test_poisson_large_lambda_uses_normal_approx(self):
        streams = RandomStreams(0)
        draws = [streams.poisson("p", 1000.0) for _ in range(200)]
        mean = sum(draws) / len(draws)
        assert 950 < mean < 1050
        assert all(d >= 0 for d in draws)

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=20))
    def test_derive_seed_total(self, seed, name):
        value = derive_seed(seed, name)
        assert 0 <= value < 2**64
