"""Unit tests for AS-path peering inference (§5.1)."""

from repro.bgp.attributes import AsPath, AsPathSegment, SegmentType
from repro.net.addresses import Prefix
from repro.topology.inference import infer_from_paths, infer_from_table
from repro.topology.routeviews import RouteViewsTable


class TestPaperExample:
    def test_1239_6453_4621(self):
        """The paper's own example: path 1239 6453 4621 makes 6453 a transit
        AS peering with both 1239 and 4621."""
        result = infer_from_paths([AsPath.from_asns([1239, 6453, 4621])])
        assert result.graph.has_link(1239, 6453)
        assert result.graph.has_link(6453, 4621)
        assert not result.graph.has_link(1239, 4621)
        assert 6453 in result.transit
        assert 4621 in result.stubs

    def test_first_as_also_transit_when_interior_elsewhere(self):
        # AS 1239 appears interior in the second path, so it is transit.
        result = infer_from_paths(
            [
                AsPath.from_asns([1239, 6453, 4621]),
                AsPath.from_asns([701, 1239, 7018]),
            ]
        )
        assert 1239 in result.transit


class TestMechanics:
    def test_single_hop_path_all_stubs(self):
        result = infer_from_paths([AsPath.from_asns([1, 2])])
        assert result.transit == frozenset()
        assert result.stubs == frozenset({1, 2})
        assert result.graph.has_link(1, 2)

    def test_prepending_collapsed(self):
        # 2 2 2 is AS-path prepending, not three distinct hops.
        result = infer_from_paths([AsPath.from_asns([1, 2, 2, 2, 3])])
        assert result.graph.num_links() == 2
        assert result.graph.has_link(1, 2)
        assert result.graph.has_link(2, 3)
        assert not result.graph.has_link(2, 2) if 2 in result.graph else True

    def test_as_set_segments_skipped(self):
        path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [1, 2]),
                AsPathSegment(SegmentType.AS_SET, [3, 4]),
            ]
        )
        result = infer_from_paths([path])
        assert result.graph.has_link(1, 2)
        # No adjacency inferred into or inside the set.
        assert 3 not in result.graph
        assert 4 not in result.graph

    def test_duplicate_paths_idempotent(self):
        path = AsPath.from_asns([1, 2, 3])
        once = infer_from_paths([path])
        thrice = infer_from_paths([path, path, path])
        assert once.graph.edges() == thrice.graph.edges()
        assert once.transit == thrice.transit

    def test_empty_and_set_only_paths_skipped(self):
        set_only = AsPath([AsPathSegment(SegmentType.AS_SET, [1, 2])])
        result = infer_from_paths([AsPath(), set_only, AsPath.from_asns([1, 2])])
        assert result.paths_used == 1
        assert result.paths_skipped == 2

    def test_counts(self):
        result = infer_from_paths(
            [AsPath.from_asns([1, 2, 3]), AsPath.from_asns([4, 2, 5])]
        )
        assert result.paths_used == 2
        assert len(result.graph) == 5
        assert result.transit == frozenset({2})


class TestFromTable:
    def test_inference_from_dump(self):
        table = RouteViewsTable(date="d")
        table.add(Prefix.parse("10.0.0.0/8"), 1, AsPath.from_asns([1, 2, 3]))
        table.add(Prefix.parse("11.0.0.0/8"), 1, AsPath.from_asns([1, 4]))
        result = infer_from_table(table)
        assert len(result.graph) == 4
        assert result.transit == frozenset({2})
