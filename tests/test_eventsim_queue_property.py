"""Property tests: the calendar EventQueue against the heap reference.

The calendar queue (`EventQueue`) reorganised the container internals; the
flat-heap implementation (`HeapEventQueue`) is retained as the executable
specification.  These tests drive both with randomized interleavings of
push / pop / pop_due / cancel / peek and require identical observable
behaviour at every step: same popped events, same peeked times, same live
counts — i.e. the exact ``(time, priority, seq)`` total order survived the
data-structure swap.
"""

from __future__ import annotations

import random

import pytest

from repro.eventsim.event import Event
from repro.eventsim.queue import EventQueue, HeapEventQueue


def _noop() -> None:
    pass


class _Pair:
    """One logical event mirrored into both queues.

    Each queue needs its own Event object (a queue owns seq/on_cancel), but
    the pair shares identity through ``name`` so pops can be compared.
    """

    def __init__(self, name: int, time: float, priority: int) -> None:
        self.name = name
        self.calendar = Event(time, _noop, priority=priority, label=str(name))
        self.heap = Event(time, _noop, priority=priority, label=str(name))

    def cancel(self) -> None:
        self.calendar.cancel()
        self.heap.cancel()


def _check_pop_equal(pair_by_label, got_cal, got_heap):
    if got_cal is None or got_heap is None:
        assert got_cal is None and got_heap is None
        return
    assert got_cal.label == got_heap.label
    assert got_cal.time == got_heap.time
    assert got_cal.priority == got_heap.priority
    # Sequence assignment is part of the contract: both queues number
    # insertions identically, so the full sort key must agree.
    assert got_cal.sort_key() == got_heap.sort_key()


@pytest.mark.parametrize("seed", range(20))
def test_random_interleavings_match_heap_reference(seed: int) -> None:
    rng = random.Random(seed)
    calendar = EventQueue()
    heap = HeapEventQueue()
    pending: list = []  # pairs believed still queued (approximate)
    next_name = 0
    # A small time domain forces heavy bucket sharing (the calendar queue's
    # fast path); occasional far-future times exercise the heap fallback.
    times = [0.0, 0.01, 0.01, 0.02, 0.02, 0.02, 0.5, 3.0, 1e6]

    for _ in range(600):
        op = rng.random()
        if op < 0.45:
            time = rng.choice(times)
            priority = rng.choice((0, 0, 0, 1, -1))
            pair = _Pair(next_name, time, priority)
            next_name += 1
            calendar.push(pair.calendar)
            heap.push(pair.heap)
            pending.append(pair)
        elif op < 0.70:
            _check_pop_equal(None, calendar.pop(), heap.pop())
        elif op < 0.80:
            until = rng.choice(times) if rng.random() < 0.8 else None
            _check_pop_equal(None, calendar.pop_due(until), heap.pop_due(until))
        elif op < 0.90:
            assert calendar.peek_time() == heap.peek_time()
        elif pending:
            victim = rng.choice(pending)
            victim.cancel()  # idempotent; double-cancels are fine
        assert len(calendar) == len(heap)
        assert bool(calendar) == bool(heap)
        assert calendar.last_seq == heap.last_seq

    # Drain both to exhaustion: residual order must match too.
    for cal_event, heap_event in zip(calendar.drain(), heap.drain()):
        _check_pop_equal(None, cal_event, heap_event)
    assert calendar.pop() is None and heap.pop() is None
    assert len(calendar) == 0 and len(heap) == 0


@pytest.mark.parametrize("seed", range(8))
def test_same_tick_pushes_during_drain(seed: int) -> None:
    """Pushing onto the timestamp currently being drained must interleave
    exactly as the heap would (fresh seqs fire after older same-time ones,
    but priority still wins)."""
    rng = random.Random(1000 + seed)
    calendar = EventQueue()
    heap = HeapEventQueue()
    name = 0
    for _ in range(30):
        pair = _Pair(name, 1.0, rng.choice((0, 0, 1)))
        name += 1
        calendar.push(pair.calendar)
        heap.push(pair.heap)

    popped = 0
    while True:
        got_cal, got_heap = calendar.pop(), heap.pop()
        if got_cal is None:
            assert got_heap is None
            break
        _check_pop_equal(None, got_cal, got_heap)
        popped += 1
        # Mid-drain, schedule more events onto the very same timestamp.
        if popped % 3 == 0 and popped < 60:
            pair = _Pair(name, 1.0, rng.choice((0, 0, -1)))
            name += 1
            calendar.push(pair.calendar)
            heap.push(pair.heap)
        assert len(calendar) == len(heap)


def test_earlier_push_mid_drain_parks_current_bucket() -> None:
    """The simulator never schedules into the past, but the container
    contract allows it: an earlier timestamp pushed while a later bucket
    drains must fire first (the calendar parks the drained bucket)."""
    calendar = EventQueue()
    heap = HeapEventQueue()
    pairs = [_Pair(i, 5.0, 0) for i in range(4)]
    for pair in pairs:
        calendar.push(pair.calendar)
        heap.push(pair.heap)
    _check_pop_equal(None, calendar.pop(), heap.pop())  # t=5 bucket is current
    early = _Pair(99, 1.0, 0)
    calendar.push(early.calendar)
    heap.push(early.heap)
    order_cal = [e.label for e in calendar.drain()]
    order_heap = [e.label for e in heap.drain()]
    assert order_cal == order_heap == ["99", "1", "2", "3"]


def test_cancelled_bucket_dropped_wholesale() -> None:
    calendar = EventQueue()
    events = [Event(2.0, _noop, label=str(i)) for i in range(5)]
    late = Event(7.0, _noop, label="late")
    for event in events:
        calendar.push(event)
    calendar.push(late)
    for event in events:
        event.cancel()
    assert len(calendar) == 1
    assert calendar.peek_time() == 7.0
    assert calendar.pop() is late
    assert calendar.pop() is None


def test_clear_detaches_cancel_hooks() -> None:
    calendar = EventQueue()
    first = Event(1.0, _noop)
    second = Event(1.0, _noop)
    calendar.push(first)
    calendar.push(second)
    calendar.pop()  # promote the bucket so clear() walks the current list
    calendar.push(Event(4.0, _noop))
    calendar.clear()
    assert len(calendar) == 0
    second.cancel()  # must not drive the live count negative / stale hook
    assert len(calendar) == 0
    fresh = Event(0.5, _noop)
    calendar.push(fresh)
    assert len(calendar) == 1
