"""Unit tests for the three RIB layers."""

import pytest

from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib, RibEntry
from repro.net.addresses import Prefix

P1 = Prefix.parse("10.0.0.0/8")
P2 = Prefix.parse("11.0.0.0/8")


def entry(prefix=P1, peer=100, path=(100,), installed_at=0.0, seq=0):
    return RibEntry(
        prefix,
        PathAttributes(as_path=AsPath.from_asns(list(path))),
        peer=peer,
        installed_at=installed_at,
        installed_seq=seq,
    )


class TestRibEntry:
    def test_origin_asn(self):
        assert entry(path=(1, 2, 3)).origin_asn == 3

    def test_local_entry(self):
        local = RibEntry(P1, PathAttributes(), peer=None)
        assert local.is_local
        assert local.origin_asn is None

    def test_age_key_orders_by_time_then_seq(self):
        older = entry(installed_at=1.0, seq=5)
        newer = entry(installed_at=1.0, seq=6)
        assert older.age_key < newer.age_key


class TestAdjRibIn:
    def test_insert_and_get(self):
        rib = AdjRibIn()
        e = entry()
        assert rib.insert(e) is None
        assert rib.get(100, P1) is e

    def test_insert_replaces_same_peer_prefix(self):
        rib = AdjRibIn()
        first = entry(path=(100, 5))
        second = entry(path=(100, 6))
        rib.insert(first)
        replaced = rib.insert(second)
        assert replaced is first
        assert rib.get(100, P1) is second
        assert len(rib) == 1

    def test_local_entry_rejected(self):
        rib = AdjRibIn()
        with pytest.raises(ValueError):
            rib.insert(RibEntry(P1, PathAttributes(), peer=None))

    def test_routes_for_prefix_in_peer_order(self):
        rib = AdjRibIn()
        rib.insert(entry(peer=300, path=(300,)))
        rib.insert(entry(peer=100, path=(100,)))
        rib.insert(entry(peer=200, path=(200,), prefix=P2))
        candidates = rib.routes_for_prefix(P1)
        assert [c.peer for c in candidates] == [100, 300]

    def test_remove(self):
        rib = AdjRibIn()
        e = entry()
        rib.insert(e)
        assert rib.remove(100, P1) is e
        assert rib.remove(100, P1) is None
        assert len(rib) == 0

    def test_remove_peer_returns_routes(self):
        rib = AdjRibIn()
        rib.insert(entry(prefix=P1))
        rib.insert(entry(prefix=P2))
        removed = rib.remove_peer(100)
        assert {e.prefix for e in removed} == {P1, P2}
        assert len(rib) == 0

    def test_prefix_iteration_deduplicates(self):
        rib = AdjRibIn()
        rib.insert(entry(peer=100))
        rib.insert(entry(peer=200, path=(200,)))
        assert list(rib.prefixes()) == [P1]


class TestLocRib:
    def test_install_and_get(self):
        rib = LocRib()
        e = entry()
        rib.install(e)
        assert rib.get(P1) is e
        assert P1 in rib

    def test_install_returns_previous(self):
        rib = LocRib()
        first, second = entry(), entry(peer=200, path=(200,))
        rib.install(first)
        assert rib.install(second) is first

    def test_withdraw(self):
        rib = LocRib()
        e = entry()
        rib.install(e)
        assert rib.withdraw(P1) is e
        assert rib.get(P1) is None
        assert rib.withdraw(P1) is None


class TestAdjRibOut:
    def test_advertisement_bookkeeping(self):
        rib = AdjRibOut()
        attrs = PathAttributes(as_path=AsPath.from_asns([1]))
        rib.record_advertisement(100, P1, attrs)
        assert rib.has_advertised(100, P1)
        assert rib.advertised(100, P1) == attrs

    def test_withdrawal_clears(self):
        rib = AdjRibOut()
        rib.record_advertisement(100, P1, PathAttributes())
        rib.record_withdrawal(100, P1)
        assert not rib.has_advertised(100, P1)

    def test_withdrawal_of_unadvertised_is_noop(self):
        AdjRibOut().record_withdrawal(100, P1)

    def test_prefixes_for_peer(self):
        rib = AdjRibOut()
        rib.record_advertisement(100, P1, PathAttributes())
        rib.record_advertisement(100, P2, PathAttributes())
        assert set(rib.prefixes_for_peer(100)) == {P1, P2}
        assert rib.prefixes_for_peer(999) == []

    def test_remove_peer(self):
        rib = AdjRibOut()
        rib.record_advertisement(100, P1, PathAttributes())
        rib.remove_peer(100)
        assert not rib.has_advertised(100, P1)
