"""Unit tests for route aggregation."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.aggregation import aggregate_routes
from repro.bgp.attributes import AsPath, Origin, PathAttributes, SegmentType
from repro.bgp.rib import RibEntry
from repro.core.moas_list import extract_moas_list
from repro.net.addresses import Prefix


def route(prefix_text, path=(100,), origin=Origin.IGP, local_pref=100):
    return RibEntry(
        Prefix.parse(prefix_text),
        PathAttributes(
            origin=origin,
            as_path=AsPath.from_asns(list(path)),
            local_pref=local_pref,
        ),
        peer=100,
    )


class TestBasicAggregation:
    def test_identical_siblings_merge_losslessly(self):
        result = aggregate_routes(
            [route("10.0.0.0/9"), route("10.128.0.0/9")], aggregator_asn=1
        )
        assert len(result.aggregates) == 1
        aggregate = result.aggregates[0]
        assert aggregate.prefix == Prefix.parse("10.0.0.0/8")
        assert not aggregate.attributes.atomic_aggregate
        assert result.routes_absorbed == 2
        assert result.table_reduction == 1

    def test_differing_paths_produce_as_set(self):
        result = aggregate_routes(
            [
                route("10.0.0.0/9", path=(100, 5)),
                route("10.128.0.0/9", path=(100, 6)),
            ],
            aggregator_asn=42,
        )
        aggregate = result.aggregates[0]
        attrs = aggregate.attributes
        assert attrs.atomic_aggregate
        assert attrs.aggregator == 42
        segments = attrs.as_path.segments
        assert segments[0].kind is SegmentType.AS_SEQUENCE
        assert segments[0].asns == (100,)
        assert segments[-1].kind is SegmentType.AS_SET
        assert set(segments[-1].asns) == {5, 6}

    def test_origin_candidates_expand(self):
        """After aggregation, the MOAS observer sees both origins as
        candidates (footnote 1)."""
        result = aggregate_routes(
            [
                route("10.0.0.0/9", path=(100, 5)),
                route("10.128.0.0/9", path=(100, 6)),
            ],
            aggregator_asn=42,
        )
        origins = result.aggregates[0].attributes.as_path.origin_asns()
        assert origins == frozenset({5, 6})

    def test_non_siblings_untouched(self):
        result = aggregate_routes(
            [route("10.0.0.0/9"), route("11.0.0.0/9")], aggregator_asn=1
        )
        assert result.aggregates == []
        assert len(result.untouched) == 2
        assert result.routes_absorbed == 0

    def test_recursive_aggregation(self):
        entries = [
            route("10.0.0.0/10"),
            route("10.64.0.0/10"),
            route("10.128.0.0/10"),
            route("10.192.0.0/10"),
        ]
        result = aggregate_routes(entries, aggregator_asn=1)
        assert len(result.aggregates) == 1
        assert result.aggregates[0].prefix == Prefix.parse("10.0.0.0/8")
        assert result.routes_absorbed == 4
        assert result.table_reduction == 3

    def test_min_length_boundary(self):
        entries = [route("10.0.0.0/9"), route("10.128.0.0/9")]
        result = aggregate_routes(entries, aggregator_asn=1, min_length=9)
        assert result.aggregates == []

    def test_origin_code_worsens(self):
        result = aggregate_routes(
            [
                route("10.0.0.0/9", path=(5,), origin=Origin.IGP),
                route("10.128.0.0/9", path=(6,), origin=Origin.INCOMPLETE),
            ],
            aggregator_asn=1,
        )
        assert result.aggregates[0].attributes.origin is Origin.INCOMPLETE

    def test_duplicate_prefixes_rejected(self):
        with pytest.raises(ValueError):
            aggregate_routes(
                [route("10.0.0.0/9"), route("10.0.0.0/9")], aggregator_asn=1
            )

    def test_bad_min_length(self):
        with pytest.raises(ValueError):
            aggregate_routes([], aggregator_asn=1, min_length=40)

    def test_empty_input(self):
        result = aggregate_routes([], aggregator_asn=1)
        assert result.all_routes() == []


class TestAggregationProperties:
    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1))
    def test_coverage_preserved(self, indices):
        """Whatever gets aggregated, the covered address space is exactly
        the union of the inputs."""
        entries = [
            route(f"10.{i * 16}.0.0/12", path=(100, 200 + i)) for i in indices
        ]
        result = aggregate_routes(entries, aggregator_asn=1)
        covered_before = {
            addr
            for e in entries
            for addr in (e.prefix.first_address, e.prefix.last_address)
        }
        for addr in covered_before:
            assert any(
                r.prefix.contains_address(addr) for r in result.all_routes()
            )
        # No aggregate covers address space absent from the input.
        input_prefixes = [e.prefix for e in entries]
        for aggregate in result.aggregates:
            for sub in aggregate.prefix.deaggregate(12):
                assert sub in input_prefixes

    @given(st.sets(st.integers(min_value=0, max_value=15), min_size=1))
    def test_no_overlapping_outputs(self, indices):
        entries = [route(f"10.{i * 16}.0.0/12") for i in indices]
        result = aggregate_routes(entries, aggregator_asn=1)
        outputs = [r.prefix for r in result.all_routes()]
        for i, a in enumerate(outputs):
            for b in outputs[i + 1:]:
                assert not a.overlaps(b)
