"""Tests for convergence measurement and the MRAI trade-off."""

import pytest

from repro.experiments.convergence import (
    measure_announcement_convergence,
    measure_withdrawal_convergence,
)
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestAnnouncementConvergence:
    def test_route_reaches_everyone(self, graph):
        result = measure_announcement_convergence(graph)
        assert result.ases_with_route == len(graph)

    def test_converges_within_diameter_delays(self, graph):
        result = measure_announcement_convergence(graph, link_delay=0.01)
        # A 25-AS topology of diameter <= 8 must converge in well under a
        # second of simulated time without MRAI.
        assert result.converged_at < 1.0

    def test_updates_bounded_without_mrai(self, graph):
        result = measure_announcement_convergence(graph, mrai=0.0)
        # One prefix: updates should be O(links), not exponential.
        assert result.updates_sent <= 6 * graph.num_links()

    def test_deterministic(self, graph):
        a = measure_announcement_convergence(graph, seed=3)
        b = measure_announcement_convergence(graph, seed=3)
        assert a == b


class TestWithdrawalConvergence:
    def test_route_fully_gone(self, graph):
        result = measure_withdrawal_convergence(graph)
        assert result.ases_with_route == 0

    def test_withdrawal_costs_at_least_as_many_updates(self, graph):
        up = measure_announcement_convergence(graph)
        down = measure_withdrawal_convergence(graph)
        # Path exploration makes route death at least as chatty as birth.
        assert down.updates_sent >= up.updates_sent * 0.5


class TestMraiTradeoff:
    def test_mrai_reduces_messages_but_slows_convergence(self, graph):
        fast = measure_withdrawal_convergence(graph, mrai=0.0)
        paced = measure_withdrawal_convergence(graph, mrai=5.0)
        assert paced.updates_sent <= fast.updates_sent
        assert paced.converged_at >= fast.converged_at

    def test_same_final_state_either_way(self, graph):
        fast = measure_announcement_convergence(graph, mrai=0.0)
        paced = measure_announcement_convergence(graph, mrai=5.0)
        assert fast.ases_with_route == paced.ases_with_route
