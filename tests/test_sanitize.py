"""Tests for the runtime sanitizer (REPRO_SANITIZE / repro.sanitize)."""

from __future__ import annotations

import pickle

import pytest

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    Origin,
    PathAttributes,
    SegmentType,
)
from repro.bgp.network import Network
from repro.core.moas_list import MLVAL, MoasList
from repro.eventsim.simulator import Simulator
from repro.eventsim.trace import TraceRecorder
from repro.net.addresses import Prefix
from repro.net.asn import ASN
from repro.sanitize import (
    SANITIZE_ENV_VAR,
    InvariantError,
    check_network_invariants,
    check_speaker_invariants,
    invariant,
    sanitizer_enabled,
)

P = Prefix.parse("10.0.0.0/16")


def converged_network(diamond_graph, sanitize=False):
    net = Network(diamond_graph)
    net.sim.sanitize = sanitize
    net.establish_sessions()
    net.originate(1, P)
    net.run_to_convergence()
    return net


class TestEnablement:
    def test_env_var_truthy_values(self, monkeypatch):
        for value in ("1", "true", "YES", " on "):
            monkeypatch.setenv(SANITIZE_ENV_VAR, value)
            assert sanitizer_enabled() is True

    def test_env_var_falsy_values(self, monkeypatch):
        for value in ("", "0", "off", "no"):
            monkeypatch.setenv(SANITIZE_ENV_VAR, value)
            assert sanitizer_enabled() is False

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert sanitizer_enabled(override=False) is False
        monkeypatch.delenv(SANITIZE_ENV_VAR)
        assert sanitizer_enabled(override=True) is True

    def test_simulator_picks_up_env(self, monkeypatch):
        monkeypatch.setenv(SANITIZE_ENV_VAR, "1")
        assert Simulator(seed=0).sanitize is True
        monkeypatch.delenv(SANITIZE_ENV_VAR)
        assert Simulator(seed=0).sanitize is False
        assert Simulator(seed=0, sanitize=True).sanitize is True

    def test_invariant_helper(self):
        invariant(True, "fine")
        with pytest.raises(InvariantError, match="boom"):
            invariant(False, "boom")

    def test_invariant_error_is_not_assertion(self):
        # Must survive python -O, i.e. not be an AssertionError.
        assert not issubclass(InvariantError, AssertionError)
        assert issubclass(InvariantError, RuntimeError)


class TestSpeakerInvariants:
    def test_healthy_network_passes(self, diamond_graph):
        net = converged_network(diamond_graph)
        check_network_invariants(net)

    def test_dangling_loc_rib_best_detected(self, diamond_graph):
        net = converged_network(diamond_graph)
        speaker = net.speaker(4)  # learned the route remotely
        entry = speaker.loc_rib.get(P)
        assert entry is not None and not entry.is_local
        speaker.adj_rib_in.remove(entry.peer, P)
        with pytest.raises(InvariantError, match="not backed by the Adj-RIB-In"):
            check_speaker_invariants(speaker)

    def test_unexported_adj_rib_out_detected(self, diamond_graph):
        net = converged_network(diamond_graph)
        speaker = net.speaker(2)
        # Forge an advertisement whose path does not start with AS 2.
        forged = PathAttributes(
            origin=Origin.IGP, as_path=AsPath.from_asns([99, 1])
        )
        speaker.adj_rib_out.record_advertisement(4, P, forged)
        with pytest.raises(InvariantError, match="export prepend"):
            check_speaker_invariants(speaker)

    def test_unknown_peer_in_adj_rib_out_detected(self, diamond_graph):
        net = converged_network(diamond_graph)
        speaker = net.speaker(2)
        forged = PathAttributes(
            origin=Origin.IGP, as_path=AsPath.from_asns([2, 1])
        )
        speaker.adj_rib_out.record_advertisement(77, P, forged)
        speaker._links[77] = speaker._links[1]
        with pytest.raises(InvariantError, match="unknown"):
            check_speaker_invariants(speaker)

    def test_inconsistent_moas_attachment_detected(self, diamond_graph):
        net = converged_network(diamond_graph)
        speaker = net.speaker(4)
        entry = speaker.loc_rib.get(P)
        # A MoasList whose decode disagrees with the carried communities is
        # unrepresentable through the public API, so splice raw communities:
        # two MLVal members plus a decode shim claiming only one.
        bad = PathAttributes(
            origin=entry.attributes.origin,
            as_path=entry.attributes.as_path,
            communities=frozenset({Community(ASN(1), MLVAL)}),
        )
        object.__setattr__(entry, "attributes", bad)
        # Single origin decodes consistently -> still passes.
        check_speaker_invariants(speaker)

    def test_moas_round_trip_checked_on_healthy_attachment(self, diamond_graph):
        net = Network(diamond_graph)
        net.establish_sessions()
        communities = MoasList([1, 4]).to_communities()
        net.originate(1, P, communities=communities)
        net.originate(4, P, communities=communities)
        net.run_to_convergence()
        check_network_invariants(net)

    def test_network_duck_typing(self):
        with pytest.raises(InvariantError, match="speakers"):
            check_network_invariants(object())


class TestSimulatorSanitize:
    def test_sanitized_run_matches_unsanitized(self, diamond_graph):
        plain = converged_network(diamond_graph, sanitize=False)
        checked = converged_network(diamond_graph, sanitize=True)
        assert plain.best_origins(P) == checked.best_origins(P)
        assert plain.sim.events_processed == checked.sim.events_processed

    def test_trace_rejects_backwards_time(self):
        trace = TraceRecorder(check_monotonic=True)
        trace.record(1.0, "cat", note="first")
        trace.record(1.0, "cat", note="same time ok")
        with pytest.raises(InvariantError, match="backwards"):
            trace.record(0.5, "cat", note="backwards")

    def test_trace_unchecked_by_default(self):
        trace = TraceRecorder()
        trace.record(1.0, "cat", note="first")
        trace.record(0.5, "cat", note="backwards ok when unchecked")

    def test_trace_clear_resets_guard(self):
        trace = TraceRecorder(check_monotonic=True)
        trace.record(5.0, "cat", note="x")
        trace.clear()
        trace.record(1.0, "cat", note="fresh epoch")

    def test_simulator_reset_rewinds_guard(self):
        sim = Simulator(seed=0, sanitize=True)
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        sim.trace.record(sim.now, "cat", note="pre-reset")
        sim.reset()
        sim.schedule_at(0.5, lambda: None)
        sim.run()
        # Post-reset records restart the clock; the guard must allow it.
        sim.trace.record(sim.now, "cat", note="post-reset")


class TestPickleSafety:
    """Round-trips for the immutable value classes that cross the pool."""

    def test_as_path_segment(self):
        seg = AsPathSegment(SegmentType.AS_SEQUENCE, (ASN(1), ASN(2)))
        assert pickle.loads(pickle.dumps(seg)) == seg

    def test_as_path(self):
        path = AsPath.from_asns([3, 2, 1])
        back = pickle.loads(pickle.dumps(path))
        assert back == path
        assert back.length == path.length

    def test_community(self):
        com = Community(ASN(65000), MLVAL)
        assert pickle.loads(pickle.dumps(com)) == com

    def test_path_attributes(self):
        attrs = PathAttributes(
            origin=Origin.IGP,
            as_path=AsPath.from_asns([2, 1]),
            communities=frozenset({Community(ASN(1), MLVAL)}),
            med=5,
            local_pref=120,
        )
        back = pickle.loads(pickle.dumps(attrs))
        assert back == attrs
        assert hash(back) == hash(attrs)

    def test_moas_list(self):
        ml = MoasList([ASN(4), ASN(1)])
        back = pickle.loads(pickle.dumps(ml))
        assert back == ml
        assert back.to_communities() == ml.to_communities()

    def test_moas_list_pickle_is_canonical(self):
        # Same set, different construction order -> identical byte stream.
        a = pickle.dumps(MoasList([ASN(1), ASN(9), ASN(5)]))
        b = pickle.dumps(MoasList([ASN(9), ASN(5), ASN(1)]))
        assert a == b
