"""Unit tests for the forwarding plane."""

import pytest

from repro.attack.models import PathSpoofing
from repro.bgp.forwarding import (
    DeliveryOutcome,
    delivery_census,
    trace_packet,
)
from repro.bgp.network import Network
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


class TestTracePacket:
    def test_delivery_along_chain(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        trace = trace_packet(net, 5, P, legitimate_origins=[1])
        assert trace.outcome is DeliveryOutcome.DELIVERED
        assert trace.hops == (5, 4, 3, 2, 1)
        assert trace.final_as == 1
        assert trace.hop_count == 4

    def test_source_is_origin(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        trace = trace_packet(net, 1, P, legitimate_origins=[1])
        assert trace.outcome is DeliveryOutcome.DELIVERED
        assert trace.hops == (1,)

    def test_blackhole_without_route(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        # Nobody originates P.
        trace = trace_packet(net, 5, P, legitimate_origins=[1])
        assert trace.outcome is DeliveryOutcome.BLACKHOLED

    def test_hijack_detected_in_data_plane(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)  # false origin
        net.run_to_convergence()
        trace = trace_packet(net, 4, P, legitimate_origins=[1])
        assert trace.outcome is DeliveryOutcome.HIJACKED
        assert trace.final_as == 5

    def test_path_spoofing_visible_in_data_plane(self, chain_graph):
        """Control plane says origin 1; the packet lands at the attacker."""
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        PathSpoofing().launch(net, 5, P, frozenset({1}))
        net.run_to_convergence()
        assert net.speaker(4).best_origin(P) == 1  # the control-plane lie
        trace = trace_packet(net, 4, P, legitimate_origins=[1])
        # AS 5 claims to forward to 1 but has no such route installed for
        # the packet — the walk ends at the attacker or loops back.
        assert trace.outcome in (
            DeliveryOutcome.HIJACKED,
            DeliveryOutcome.BLACKHOLED,
            DeliveryOutcome.LOOPED,
        )
        assert trace.hops[1] == 5

    def test_longest_match_prefers_more_specific(self, chain_graph):
        specific = Prefix.parse("10.0.1.0/24")
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.originate(5, specific)  # more-specific de-aggregation capture
        net.run_to_convergence()
        trace = trace_packet(net, 3, specific, legitimate_origins=[1])
        assert trace.final_as == 5
        assert trace.outcome is DeliveryOutcome.HIJACKED


class TestDeliveryCensus:
    def test_census_partitions_all_ases(self, diamond_graph):
        net = Network(diamond_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        census = delivery_census(net, P, legitimate_origins=[1])
        total = sum(len(v) for v in census.values())
        assert total == len(diamond_graph)
        assert sorted(census[DeliveryOutcome.DELIVERED]) == [1, 2, 3, 4]

    def test_census_exclusion(self, diamond_graph):
        net = Network(diamond_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        census = delivery_census(net, P, legitimate_origins=[1], exclude=[4])
        assert 4 not in census[DeliveryOutcome.DELIVERED]

    def test_census_hijack_share(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()
        census = delivery_census(net, P, legitimate_origins=[1], exclude=[5])
        assert census[DeliveryOutcome.HIJACKED] == [4]
        assert set(census[DeliveryOutcome.DELIVERED]) == {1, 2, 3}
