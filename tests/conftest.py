"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bgp.network import Network
from repro.eventsim import Simulator
from repro.net import Prefix
from repro.topology import ASGraph


@pytest.fixture
def sim() -> Simulator:
    return Simulator(seed=0)


@pytest.fixture
def prefix() -> Prefix:
    return Prefix.parse("10.0.0.0/16")


@pytest.fixture
def diamond_graph() -> ASGraph:
    """A 4-AS diamond: 1 and 4 at the tips, 2 and 3 as transit sides."""
    return ASGraph.from_edges(
        [(1, 2), (1, 3), (2, 4), (3, 4)], transit=[2, 3]
    )


@pytest.fixture
def chain_graph() -> ASGraph:
    """A 5-AS chain: 1 - 2 - 3 - 4 - 5."""
    return ASGraph.from_edges(
        [(1, 2), (2, 3), (3, 4), (4, 5)], transit=[2, 3, 4]
    )


@pytest.fixture
def figure6_graph() -> ASGraph:
    """The paper's Figure 6 scenario shape: two genuine origins (1, 2)
    multi-homed through transit 3 and 4, a would-be false origin at 5."""
    return ASGraph.from_edges(
        [(1, 3), (2, 3), (3, 4), (4, 5), (1, 4), (2, 5)], transit=[3, 4]
    )


@pytest.fixture
def diamond_network(diamond_graph) -> Network:
    network = Network(diamond_graph)
    network.establish_sessions()
    return network
