"""Unit and property tests for the MOAS list and its community encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    PathAttributes,
    SegmentType,
)
from repro.core.moas_list import MLVAL, MoasList, extract_moas_list, moas_communities

asn_sets = st.sets(st.integers(min_value=1, max_value=65535), min_size=1, max_size=8)


class TestMoasList:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MoasList([])

    def test_set_semantics(self):
        assert MoasList([1, 2, 2]) == MoasList([2, 1])
        assert hash(MoasList([1, 2])) == hash(MoasList([2, 1]))

    def test_consistency_is_set_equality(self):
        """§4.2: order may differ, membership must be identical."""
        assert MoasList([1, 2]).consistent_with(MoasList([2, 1]))
        assert not MoasList([1, 2]).consistent_with(MoasList([1, 2, 3]))
        assert not MoasList([1]).consistent_with(MoasList([2]))

    def test_authorises(self):
        lst = MoasList([1, 2])
        assert lst.authorises(1)
        assert not lst.authorises(3)

    def test_iteration_sorted(self):
        assert list(MoasList([3, 1, 2])) == [1, 2, 3]

    def test_len_and_contains(self):
        lst = MoasList([1, 2])
        assert len(lst) == 2
        assert 1 in lst and 9 not in lst

    def test_encoded_size(self):
        """§4.3: four octets per community, one community per origin."""
        assert MoasList([1]).encoded_size_bytes() == 4
        assert MoasList([1, 2, 3]).encoded_size_bytes() == 12

    def test_immutable(self):
        with pytest.raises(AttributeError):
            MoasList([1]).origins = frozenset()


class TestEncoding:
    def test_to_communities_figure7(self):
        """Figure 7: prefix shared by AS1 and AS2 carries (1:MLVal, 2:MLVal)."""
        communities = MoasList([1, 2]).to_communities()
        assert communities == {Community(1, MLVAL), Community(2, MLVAL)}

    def test_from_communities_ignores_unrelated(self):
        communities = [Community(1, MLVAL), Community(9, 42)]
        assert MoasList.from_communities(communities) == MoasList([1])

    def test_from_communities_none_when_absent(self):
        assert MoasList.from_communities([Community(9, 42)]) is None
        assert MoasList.from_communities([]) is None

    def test_moas_communities_helper(self):
        assert moas_communities([1, 2]) == MoasList([1, 2]).to_communities()

    @given(asn_sets)
    def test_roundtrip(self, origins):
        lst = MoasList(origins)
        assert MoasList.from_communities(lst.to_communities()) == lst


class TestExtraction:
    def test_explicit_list_wins(self):
        attrs = PathAttributes(
            as_path=AsPath.from_asns([5]),
            communities=moas_communities([1, 2]),
        )
        assert extract_moas_list(attrs) == MoasList([1, 2])

    def test_footnote3_implicit_singleton(self):
        """A route without a MOAS list is treated as carrying {origin}."""
        attrs = PathAttributes(as_path=AsPath.from_asns([7, 8]))
        assert extract_moas_list(attrs) == MoasList([8])

    def test_implicit_origin_override(self):
        attrs = PathAttributes()  # locally originated: empty path
        assert extract_moas_list(attrs, implicit_origin=5) == MoasList([5])

    def test_ambiguous_origin_none(self):
        set_path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [1]),
                AsPathSegment(SegmentType.AS_SET, [2, 3]),
            ]
        )
        attrs = PathAttributes(as_path=set_path)
        assert extract_moas_list(attrs) is None

    def test_ambiguous_origin_with_explicit_list(self):
        set_path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SET, [2, 3]),
            ]
        )
        attrs = PathAttributes(
            as_path=set_path, communities=moas_communities([2, 3])
        )
        assert extract_moas_list(attrs) == MoasList([2, 3])
