"""Unit and behavioural tests for route-flap damping."""

import pytest

from repro.bgp.damping import DampingConfig, RouteFlapDamper
from repro.bgp.network import Network
from repro.bgp.speaker import BGPSpeaker
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")

FAST = DampingConfig(
    penalty_per_flap=1000.0,
    suppress_threshold=1500.0,
    reuse_threshold=750.0,
    half_life=10.0,
    max_suppress_time=60.0,
)


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"penalty_per_flap": 0},
            {"reuse_threshold": 0},
            {"suppress_threshold": 700.0, "reuse_threshold": 750.0},
            {"half_life": 0},
            {"max_suppress_time": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DampingConfig(**kwargs).validate()

    def test_max_penalty_growth(self):
        config = DampingConfig(half_life=900.0, max_suppress_time=3600.0)
        assert config.max_penalty == pytest.approx(750.0 * 16)


class TestDamperMechanics:
    def make(self, sim):
        speaker = BGPSpeaker(sim, 1)
        damper = RouteFlapDamper(FAST)
        damper.attach(speaker)
        return speaker, damper

    def test_first_announcement_not_a_flap(self, sim):
        _, damper = self.make(sim)
        from repro.bgp.attributes import AsPath, PathAttributes

        attrs = PathAttributes(as_path=AsPath.from_asns([2]))
        assert damper.validate(2, P, attrs)
        assert damper.penalty(2, P) == 0.0

    def test_attribute_change_is_a_flap(self, sim):
        _, damper = self.make(sim)
        from repro.bgp.attributes import AsPath, PathAttributes

        damper.validate(2, P, PathAttributes(as_path=AsPath.from_asns([2])))
        damper.validate(2, P, PathAttributes(as_path=AsPath.from_asns([2, 3])))
        assert damper.penalty(2, P) == pytest.approx(1000.0)
        assert damper.flap_count(2, P) == 1

    def test_identical_reannouncement_not_a_flap(self, sim):
        _, damper = self.make(sim)
        from repro.bgp.attributes import AsPath, PathAttributes

        attrs = PathAttributes(as_path=AsPath.from_asns([2]))
        damper.validate(2, P, attrs)
        damper.validate(2, P, attrs)
        assert damper.penalty(2, P) == 0.0

    def test_withdrawal_is_a_flap(self, sim):
        _, damper = self.make(sim)
        damper.note_withdrawal(2, P)
        assert damper.penalty(2, P) == pytest.approx(1000.0)

    def test_suppression_after_repeated_flaps(self, sim):
        _, damper = self.make(sim)
        from repro.bgp.attributes import AsPath, PathAttributes

        attrs_a = PathAttributes(as_path=AsPath.from_asns([2]))
        damper.validate(2, P, attrs_a)
        damper.note_withdrawal(2, P)  # flap 1: penalty 1000
        # Re-announcement after the withdrawal is flap 2: penalty 2000
        # crosses the suppress threshold, so this very route is rejected.
        assert not damper.validate(2, P, attrs_a)
        assert damper.penalty(2, P) >= 1500.0
        assert damper.is_suppressed(2, P)
        assert damper.suppressions == 1

    def test_penalty_decays_exponentially(self, sim):
        _, damper = self.make(sim)
        damper.note_withdrawal(2, P)
        sim.schedule_at(10.0, lambda: None)  # advance one half-life
        sim.run()
        assert damper.penalty(2, P) == pytest.approx(500.0, rel=0.01)

    def test_reuse_after_decay(self, sim):
        _, damper = self.make(sim)
        damper.note_withdrawal(2, P)
        damper.note_withdrawal(2, P)  # penalty 2000, suppressed
        assert damper.is_suppressed(2, P)
        sim.schedule_at(20.0, lambda: None)  # two half-lives: penalty 500
        sim.run()
        assert not damper.is_suppressed(2, P)
        assert damper.reuses == 1

    def test_penalty_capped(self, sim):
        _, damper = self.make(sim)
        for _ in range(100):
            damper.note_withdrawal(2, P)
        assert damper.penalty(2, P) <= FAST.max_penalty

    def test_double_attach_rejected(self, sim):
        speaker, damper = self.make(sim)
        with pytest.raises(RuntimeError):
            damper.attach(speaker)


class TestDampingInNetwork:
    def test_flapping_origin_gets_suppressed(self, chain_graph):
        """A prefix that its origin repeatedly withdraws/re-announces is
        eventually damped at the neighbour and stops propagating."""
        net = Network(chain_graph)
        damper = RouteFlapDamper(FAST)
        damper.attach(net.speaker(2))
        net.establish_sessions()

        for _ in range(3):
            net.speaker(1).originate(P)
            net.run_to_convergence()
            net.speaker(1).withdraw_origination(P)
            # The withdrawal flap is recorded automatically: the damper is
            # wired as AS 2's withdrawal listener.
            net.run_to_convergence()

        net.speaker(1).originate(P)
        net.run_to_convergence()
        assert damper.is_suppressed(1, P)
        assert net.speaker(3).best_route(P) is None  # damped at AS 2
