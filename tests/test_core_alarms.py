"""Unit tests for the alarm log."""

from repro.core.alarms import Alarm, AlarmKind, AlarmLog
from repro.core.moas_list import MoasList
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("11.0.0.0/16")


def alarm(detector=1, prefix=P, kind=AlarmKind.INCONSISTENT_LISTS, suspect=None):
    return Alarm(
        time=0.0,
        detector=detector,
        prefix=prefix,
        kind=kind,
        observed_list=MoasList([1]),
        suspect_origin=suspect,
    )


class TestAlarmLog:
    def test_append_and_len(self):
        log = AlarmLog()
        log.raise_alarm(alarm())
        log.raise_alarm(alarm(detector=2))
        assert len(log) == 2

    def test_for_prefix(self):
        log = AlarmLog()
        log.raise_alarm(alarm(prefix=P))
        log.raise_alarm(alarm(prefix=Q))
        assert len(log.for_prefix(P)) == 1

    def test_by_detector(self):
        log = AlarmLog()
        log.raise_alarm(alarm(detector=1))
        log.raise_alarm(alarm(detector=1))
        log.raise_alarm(alarm(detector=2))
        grouped = log.by_detector()
        assert len(grouped[1]) == 2
        assert len(grouped[2]) == 1

    def test_detectors(self):
        log = AlarmLog()
        log.raise_alarm(alarm(detector=5))
        assert log.detectors() == frozenset({5})

    def test_count_by_kind(self):
        log = AlarmLog()
        log.raise_alarm(alarm(kind=AlarmKind.INCONSISTENT_LISTS))
        log.raise_alarm(alarm(kind=AlarmKind.UNAUTHORISED_ORIGIN))
        assert log.count(AlarmKind.INCONSISTENT_LISTS) == 1
        assert log.count(AlarmKind.ORIGIN_NOT_IN_OWN_LIST) == 0

    def test_suspects_only_from_implicating_kinds(self):
        log = AlarmLog()
        log.raise_alarm(alarm(kind=AlarmKind.UNAUTHORISED_ORIGIN, suspect=42))
        log.raise_alarm(alarm(kind=AlarmKind.ORIGIN_NOT_IN_OWN_LIST, suspect=43))
        # An inconsistency alarm records the arriving origin for context,
        # but accuses no one (the arriving route may be the genuine one).
        log.raise_alarm(alarm(kind=AlarmKind.INCONSISTENT_LISTS, suspect=10))
        log.raise_alarm(alarm(suspect=None))
        assert log.suspects() == frozenset({42, 43})

    def test_clear(self):
        log = AlarmLog()
        log.raise_alarm(alarm())
        log.clear()
        assert len(log) == 0

    def test_iteration_order(self):
        log = AlarmLog()
        first, second = alarm(detector=1), alarm(detector=2)
        log.raise_alarm(first)
        log.raise_alarm(second)
        assert list(log) == [first, second]
