"""Unit tests for the simulation driver."""

import pytest

from repro.eventsim import Simulator, SimulationError


class TestScheduling:
    def test_schedule_at_past_rejected(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_schedule_after_negative_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda: None)

    def test_schedule_after_is_relative(self, sim):
        fired_at = []
        sim.schedule_after(1.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [1.0]

    def test_handle_cancellation_prevents_firing(self, sim):
        hits = []
        handle = sim.schedule_after(1.0, lambda: hits.append(1))
        handle.cancel()
        sim.run()
        assert hits == []


class TestRunning:
    def test_run_advances_clock(self, sim):
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_run_returns_event_count(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run() == 3

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_bounded_runs_compose(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 10]

    def test_events_can_schedule_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule_after(1.0, lambda: fired.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_same_time_events_fire_in_insertion_order(self, sim):
        fired = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule_at(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def reschedule():
            sim.schedule_after(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_to_quiescence_drains(self, sim):
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run_to_quiescence()
        assert len(sim.queue) == 0


class TestReset:
    def test_reset_clears_queue_and_clock(self, sim):
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert len(sim.queue) == 0
        assert sim.events_processed == 0

    def test_reset_rewinds_sequence_counter(self, sim):
        first = [sim.next_sequence() for _ in range(3)]
        sim.reset()
        second = [sim.next_sequence() for _ in range(3)]
        assert second == first

    def test_reset_hooks_fire_in_registration_order(self, sim):
        fired = []
        sim.add_reset_hook(lambda: fired.append("a"))
        sim.add_reset_hook(lambda: fired.append("b"))
        sim.reset()
        assert fired == ["a", "b"]
        sim.reset()
        assert fired == ["a", "b", "a", "b"]

    def test_reset_hooks_observe_rewound_state(self, sim):
        # Hooks fire last, so a hook clearing caches sees t=0 and an
        # empty queue — never half-reset state.
        seen = []
        sim.add_reset_hook(lambda: seen.append((sim.now, len(sim.queue))))
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        sim.schedule_at(9.0, lambda: None)
        sim.reset()
        assert seen == [(0.0, 0)]


class TestSequence:
    def test_next_sequence_monotonic(self, sim):
        values = [sim.next_sequence() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run(seed):
            sim = Simulator(seed=seed)
            order = []
            for i in range(20):
                delay = sim.random.uniform("delays", 0.0, 10.0)
                sim.schedule_after(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert build_and_run(42) == build_and_run(42)

    def test_different_seeds_differ(self):
        def run_order(seed):
            sim = Simulator(seed=seed)
            order = []
            for i in range(20):
                delay = sim.random.uniform("delays", 0.0, 10.0)
                sim.schedule_after(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run_order(1) != run_order(2)


class TestMetrics:
    def test_no_registry_by_default(self, sim):
        assert sim.metrics is None
        sim.schedule_at(1.0, lambda: None)
        sim.run()  # instrumentation guard is a no-op, nothing raises

    def test_event_counter_tracks_dispatches(self):
        from repro.eventsim.simulator import Simulator
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(seed=1, metrics=registry)
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run()
        snapshot = registry.snapshot()
        assert snapshot["sim.events"] == 3
        assert snapshot["sim.events"] == sim.events_processed

    def test_queue_depth_gauge_is_sampled(self):
        from repro.eventsim.simulator import Simulator
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(seed=1, metrics=registry)
        stride = Simulator.QUEUE_DEPTH_SAMPLE_INTERVAL
        total = 2 * stride + 3
        for i in range(total):
            sim.schedule_at(float(i + 1), lambda: None)
        sim.run()
        depth = registry.snapshot()["sim.queue_depth"]
        # The gauge samples every `stride` events, not per event: the first
        # sample lands after `stride` dispatches (depth = total - stride),
        # and the end-of-run flush records the drained queue.
        assert depth["max"] == float(total - stride)
        assert depth["value"] == 0.0

    def test_queue_depth_gauge_flushed_at_end_of_short_run(self):
        from repro.eventsim.simulator import Simulator
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator(seed=1, metrics=registry)
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        sim.run(until=1.5)  # fewer events than one sampling stride
        depth = registry.snapshot()["sim.queue_depth"]
        assert depth["value"] == 2.0  # two events still pending at flush

    def test_instruments_registered_even_if_run_is_empty(self):
        # An empty registry is falsy; the constructor must still register
        # its instruments (the guard is "is not None", not truthiness).
        from repro.eventsim.simulator import Simulator
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        Simulator(seed=1, metrics=registry)
        assert "sim.events" in registry
        assert "sim.queue_depth" in registry
