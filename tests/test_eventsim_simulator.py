"""Unit tests for the simulation driver."""

import pytest

from repro.eventsim import Simulator, SimulationError


class TestScheduling:
    def test_schedule_at_past_rejected(self, sim):
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_schedule_after_negative_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule_after(-0.1, lambda: None)

    def test_schedule_after_is_relative(self, sim):
        fired_at = []
        sim.schedule_after(1.0, lambda: fired_at.append(sim.now))
        sim.run()
        assert fired_at == [1.0]

    def test_handle_cancellation_prevents_firing(self, sim):
        hits = []
        handle = sim.schedule_after(1.0, lambda: hits.append(1))
        handle.cancel()
        sim.run()
        assert hits == []


class TestRunning:
    def test_run_advances_clock(self, sim):
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        assert sim.now == 5.0

    def test_run_returns_event_count(self, sim):
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        assert sim.run() == 3

    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_bounded_runs_compose(self, sim):
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 10]

    def test_events_can_schedule_events(self, sim):
        fired = []

        def first():
            fired.append("first")
            sim.schedule_after(1.0, lambda: fired.append("second"))

        sim.schedule_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0

    def test_same_time_events_fire_in_insertion_order(self, sim):
        fired = []
        for i in range(5):
            sim.schedule_at(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule_at(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def reschedule():
            sim.schedule_after(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_to_quiescence_drains(self, sim):
        for t in (1.0, 2.0):
            sim.schedule_at(t, lambda: None)
        sim.run_to_quiescence()
        assert len(sim.queue) == 0


class TestReset:
    def test_reset_clears_queue_and_clock(self, sim):
        sim.schedule_at(5.0, lambda: None)
        sim.run()
        sim.reset()
        assert sim.now == 0.0
        assert len(sim.queue) == 0
        assert sim.events_processed == 0

    def test_reset_rewinds_sequence_counter(self, sim):
        first = [sim.next_sequence() for _ in range(3)]
        sim.reset()
        second = [sim.next_sequence() for _ in range(3)]
        assert second == first


class TestSequence:
    def test_next_sequence_monotonic(self, sim):
        values = [sim.next_sequence() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run(seed):
            sim = Simulator(seed=seed)
            order = []
            for i in range(20):
                delay = sim.random.uniform("delays", 0.0, 10.0)
                sim.schedule_after(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert build_and_run(42) == build_and_run(42)

    def test_different_seeds_differ(self):
        def run_order(seed):
            sim = Simulator(seed=seed)
            order = []
            for i in range(20):
                delay = sim.random.uniform("delays", 0.0, 10.0)
                sim.schedule_after(delay, lambda i=i: order.append(i))
            sim.run()
            return order

        assert run_order(1) != run_order(2)
