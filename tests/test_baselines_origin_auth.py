"""Unit and behavioural tests for the S-BGP-style origin-attestation baseline."""

import pytest

from repro.baselines.origin_auth import (
    AttestationAuthority,
    OriginAuthValidator,
    attestation_communities,
)
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.network import Network
from repro.core.moas_list import MLVAL
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


class TestAuthority:
    def test_issue_requires_certificate(self):
        authority = AttestationAuthority()
        with pytest.raises(PermissionError):
            authority.issue(P, 1)
        authority.certify(P, [1])
        communities = authority.issue(P, 1)
        assert len(communities) == 1

    def test_verify_roundtrip(self):
        authority = AttestationAuthority()
        authority.certify(P, [1])
        attrs = PathAttributes(
            as_path=AsPath.from_asns([1]), communities=authority.issue(P, 1)
        )
        assert authority.verify(P, 1, attrs) is True

    def test_verify_rejects_missing_attestation(self):
        authority = AttestationAuthority()
        authority.certify(P, [1])
        attrs = PathAttributes(as_path=AsPath.from_asns([5]))
        assert authority.verify(P, 5, attrs) is False

    def test_verify_unattested_prefix_is_none(self):
        authority = AttestationAuthority()
        attrs = PathAttributes(as_path=AsPath.from_asns([5]))
        assert authority.verify(Q, 5, attrs) is None

    def test_attacker_cannot_reuse_origin_tag(self):
        """The tag binds (prefix, origin): attaching the genuine origin's
        attestation to a different origin's announcement fails."""
        authority = AttestationAuthority()
        authority.certify(P, [1])
        stolen = authority.issue(P, 1)
        attrs = PathAttributes(as_path=AsPath.from_asns([5]), communities=stolen)
        assert authority.verify(P, 5, attrs) is False

    def test_tags_never_collide_with_mlval(self):
        authority = AttestationAuthority()
        for i in range(1, 300):
            prefix = Prefix((10 << 24) | (i << 16), 16)
            authority.certify(prefix, [i])
            (community,) = authority.issue(prefix, i)
            assert community.value != MLVAL

    def test_different_secrets_different_tags(self):
        a = AttestationAuthority(b"a")
        b = AttestationAuthority(b"b")
        a.certify(P, [1])
        b.certify(P, [1])
        assert a.issue(P, 1) != b.issue(P, 1)

    def test_empty_certification_rejected(self):
        with pytest.raises(ValueError):
            AttestationAuthority().certify(P, [])


class TestValidatorBehaviour:
    def run_chain(self, chain_graph, authority, certified=True):
        net = Network(chain_graph)
        validators = {}
        for asn in (2, 3, 4):
            validator = OriginAuthValidator(authority)
            net.speaker(asn).add_import_validator(validator)
            validators[asn] = validator
        net.establish_sessions()
        communities = (
            attestation_communities(authority, P, 1) if certified else ()
        )
        net.originate(1, P, communities=communities)
        net.run_to_convergence()
        net.originate(5, P)
        net.run_to_convergence()
        return net, validators

    def test_certified_prefix_protected(self, chain_graph):
        authority = AttestationAuthority()
        authority.certify(P, [1])
        net, validators = self.run_chain(chain_graph, authority)
        assert net.best_origins(P)[4] == 1
        assert sum(v.rejections for v in validators.values()) >= 1

    def test_uncertified_prefix_unprotected(self, chain_graph):
        """The rollout gap: no certificate, no protection."""
        authority = AttestationAuthority()  # nothing certified
        net, validators = self.run_chain(chain_graph, authority, certified=False)
        assert net.best_origins(P)[4] == 5
        assert sum(v.unverifiable for v in validators.values()) >= 1

    def test_certified_origin_without_attestation_rejected(self, chain_graph):
        """A certified prefix announced *without* its attestation is
        rejected — the genuine origin must actually attach it."""
        authority = AttestationAuthority()
        authority.certify(P, [1])
        net, validators = self.run_chain(chain_graph, authority, certified=False)
        # Both the unattested genuine route and the attacker are rejected.
        assert net.best_origins(P)[4] is None
