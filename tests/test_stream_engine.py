"""Tests for the incremental online MOAS detector."""

from __future__ import annotations

import json

import pytest

from repro.core.checker import AlarmKind
from repro.net.addresses import Prefix
from repro.obs.metrics import MetricsRegistry
from repro.stream.engine import StreamAlarm, StreamEngine
from repro.stream.feed import FeedRecord

P1 = Prefix.parse("10.0.0.0/24")
P2 = Prefix.parse("10.0.1.0/24")


def announce(time, prefix, origin, moas=None):
    return FeedRecord(op="A", time=time, prefix=prefix, origin=origin, moas=moas)


def withdraw(time, prefix, origin):
    return FeedRecord(op="W", time=time, prefix=prefix, origin=origin)


def tick(time):
    return FeedRecord(op="T", time=time)


def run(engine, records):
    alarms = []
    for record in records:
        alarms.extend(engine.apply(record))
    return alarms


class TestConsistencyRules:
    def test_consistent_moas_raises_no_alarm(self):
        engine = StreamEngine()
        alarms = run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7, 9)),
                announce(0.0, P1, 9, moas=(7, 9)),
                tick(0.0),
            ],
        )
        assert alarms == []
        assert engine.moas_active == 1

    def test_inconsistent_lists_alarm(self):
        engine = StreamEngine()
        alarms = run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7,)),
                announce(0.0, P1, 9, moas=(9,)),
            ],
        )
        assert [a.kind for a in alarms] == [AlarmKind.INCONSISTENT_LISTS.value]
        assert alarms[0].observed == (9,)
        assert alarms[0].conflicting == (7,)

    def test_implicit_singleton_vs_explicit_list(self):
        # An unwitnessed unilateral announce conflicts with the incumbent's
        # coordinated list (paper footnote 3: no communities => {origin}).
        engine = StreamEngine()
        alarms = run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7, 9)),
                announce(0.0, P1, 9, moas=(7, 9)),
                announce(1.0, P1, 11),
            ],
        )
        assert [a.kind for a in alarms] == [AlarmKind.INCONSISTENT_LISTS.value]
        assert alarms[0].observed == (11,)

    def test_origin_not_in_own_list(self):
        engine = StreamEngine()
        alarms = run(engine, [announce(0.0, P1, 7, moas=(8, 9))])
        assert [a.kind for a in alarms] == [
            AlarmKind.ORIGIN_NOT_IN_OWN_LIST.value
        ]
        # The route is still installed (ALARM_ONLY semantics)...
        assert engine.live_origins(P1) == (7,)
        # ...but the bogus list is not usable as step-3 evidence.
        follow_on = run(engine, [announce(0.0, P1, 9, moas=(8, 9))])
        assert follow_on == []

    def test_repeat_of_known_list_is_not_a_new_alarm(self):
        engine = StreamEngine()
        first = run(
            engine,
            [announce(0.0, P1, 7, moas=(7,)), announce(0.0, P1, 9, moas=(9,))],
        )
        assert len(first) == 1
        # Origin 9 refreshes the same inconsistent list: already-seen
        # evidence, so no new alarm is recorded at all.
        again = run(engine, [announce(1.0, P1, 9, moas=(9,))])
        assert again == []
        assert engine.alarms_emitted == 1

    def test_repeated_malformed_announce_dedups(self):
        engine = StreamEngine()
        first = run(engine, [announce(0.0, P1, 7, moas=(8, 9))])
        assert len(first) == 1
        again = run(engine, [announce(1.0, P1, 7, moas=(8, 9))])
        assert again == []
        assert engine.alarm_duplicates == 1
        totals = engine.alarm_totals()
        assert totals == {AlarmKind.ORIGIN_NOT_IN_OWN_LIST.value: 2}

    def test_alarm_totals_aggregates_by_kind(self):
        engine = StreamEngine()
        run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7,)),
                announce(0.0, P1, 9, moas=(9,)),
                announce(1.0, P2, 3, moas=(4,)),
            ],
        )
        assert engine.alarm_totals() == {
            AlarmKind.INCONSISTENT_LISTS.value: 1,
            AlarmKind.ORIGIN_NOT_IN_OWN_LIST.value: 1,
        }


class TestWithdrawals:
    def test_withdraw_removes_origin(self):
        engine = StreamEngine()
        run(engine, [announce(0.0, P1, 7, moas=(7, 9)), announce(0.0, P1, 9, moas=(7, 9))])
        assert engine.moas_active == 1
        run(engine, [withdraw(1.0, P1, 9)])
        assert engine.live_origins(P1) == (7,)
        assert engine.moas_active == 0

    def test_withdraw_unknown_route_is_noop(self):
        engine = StreamEngine()
        assert run(engine, [withdraw(0.0, P1, 7)]) == []
        assert engine.state_prefixes == 0

    def test_withdraw_last_origin_empties_prefix(self):
        engine = StreamEngine()
        run(engine, [announce(0.0, P1, 7)])
        run(engine, [withdraw(1.0, P1, 7)])
        assert engine.live_origins(P1) == ()


class TestTicksAndSeries:
    def test_daily_counts_track_moas(self):
        engine = StreamEngine()
        run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7, 9)),
                announce(0.0, P1, 9, moas=(7, 9)),
                tick(0.0),
                withdraw(1.0, P1, 9),
                tick(1.0),
            ],
        )
        assert engine.daily_counts == {0: 1, 1: 0}
        assert engine.daily_series() == [1, 0]

    def test_duplicate_day_tick_rejected(self):
        engine = StreamEngine()
        run(engine, [tick(0.0)])
        with pytest.raises(ValueError, match="already ticked"):
            run(engine, [tick(0.0)])

    def test_eviction_after_window(self):
        engine = StreamEngine(window=2.0)
        run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7,)),
                announce(0.0, P1, 9, moas=(9,)),  # alarm evidence
                withdraw(0.0, P1, 7),
                withdraw(0.0, P1, 9),
                tick(0.0),
                tick(1.0),
            ],
        )
        # Still within the window: observed evidence retained.
        assert engine.evictions == 0
        run(engine, [tick(2.0)])
        assert engine.evictions == 1
        # After eviction the same inconsistent pair alarms afresh.
        alarms = run(
            engine,
            [announce(3.0, P1, 7, moas=(7,)), announce(3.0, P1, 9, moas=(9,))],
        )
        assert len(alarms) == 1
        assert engine.alarm_duplicates == 0

    def test_live_prefix_is_never_evicted(self):
        engine = StreamEngine(window=1.0)
        run(engine, [announce(0.0, P1, 7)])
        run(engine, [tick(t) for t in (0.0, 1.0, 2.0, 3.0)])
        assert engine.evictions == 0
        assert engine.live_origins(P1) == (7,)


class TestAlarmSerialisation:
    def test_alarm_json_line_is_canonical(self):
        alarm = StreamAlarm(
            time=1.0,
            prefix=str(P1),
            kind=AlarmKind.INCONSISTENT_LISTS.value,
            observed=(9,),
            conflicting=(7,),
        )
        payload = json.loads(alarm.to_json_line())
        assert payload["prefix"] == "10.0.0.0/24"
        assert payload["observed"] == [9]
        assert alarm.to_json_line() == alarm.to_json_line()


class TestStateRoundTrip:
    def _busy_engine(self):
        engine = StreamEngine(window=5.0)
        run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7, 9)),
                announce(0.0, P1, 9, moas=(7, 9)),
                announce(0.0, P2, 3, moas=(3,)),
                announce(0.0, P2, 4, moas=(4,)),
                tick(0.0),
                withdraw(1.0, P2, 4),
                tick(1.0),
            ],
        )
        return engine

    def test_snapshot_restore_identity(self):
        engine = self._busy_engine()
        state = engine.snapshot_state()
        clone = StreamEngine(window=5.0)
        clone.restore_state(state)
        assert clone.snapshot_state() == state
        assert clone.daily_counts == engine.daily_counts
        assert clone.moas_active == engine.moas_active
        assert clone.alarm_totals() == engine.alarm_totals()

    def test_snapshot_is_json_safe(self):
        engine = self._busy_engine()
        state = engine.snapshot_state()
        assert json.loads(json.dumps(state, sort_keys=True)) == state

    def test_restored_engine_continues_identically(self):
        engine = self._busy_engine()
        clone = StreamEngine(window=5.0)
        clone.restore_state(engine.snapshot_state())
        tail = [
            announce(2.0, P2, 3, moas=(3,)),  # repeat: dedup on both
            announce(2.0, P1, 11),  # fresh conflict on both
            tick(2.0),
        ]
        a = run(engine, list(tail))
        b = run(clone, list(tail))
        assert [x.to_json_line() for x in a] == [x.to_json_line() for x in b]
        assert engine.snapshot_state() == clone.snapshot_state()


class TestMetrics:
    def test_instruments_registered_and_updated(self):
        registry = MetricsRegistry()
        engine = StreamEngine(metrics=registry)
        run(
            engine,
            [
                announce(0.0, P1, 7, moas=(7,)),
                announce(0.0, P1, 9, moas=(9,)),
                withdraw(0.0, P1, 9),
                tick(0.0),
            ],
        )
        snapshot = registry.snapshot()
        assert snapshot["stream.updates"] == 4
        assert snapshot["stream.announces"] == 2
        assert snapshot["stream.withdrawals"] == 1
        assert snapshot["stream.ticks"] == 1
        assert snapshot["stream.alarms"] == 1
        assert snapshot["stream.state_prefixes"]["value"] == 1
        assert snapshot["stream.moas_active"]["value"] == 0
