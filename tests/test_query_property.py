"""Property test: segment merging is invisible in every answer.

Random operation sequences, folded once as a flat event stream and once
through ``assemble_segment``/``fold_segment`` with random segmentation
points, must produce bit-identical ``answers_doc`` output.  This is the
merge-correctness half of the index: any interleaving of boundary cuts
yields the same served history as a single unsegmented pass.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.addresses import Prefix
from repro.query.model import StoreState, answers_doc, canonical_json
from repro.query.segments import assemble_segment
from repro.query.track import OriginTracker
from repro.stream.feed import FeedRecord

PREFIXES = ["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"]
ORIGINS = [3, 7, 9, 8584]
KINDS = ["inconsistent-lists", "origin-not-in-own-list"]

ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("A"),
            st.sampled_from(PREFIXES),
            st.sampled_from(ORIGINS),
        ),
        st.tuples(
            st.just("W"),
            st.sampled_from(PREFIXES),
            st.sampled_from(ORIGINS),
        ),
        st.tuples(st.just("T")),
    ),
    min_size=1,
    max_size=60,
)


def record_for(op, position):
    """Time is the op's position, so every record time is distinct and
    ticks land on distinct days."""
    if op[0] == "T":
        return FeedRecord(op="T", time=float(position))
    return FeedRecord(
        op=op[0], time=float(position),
        prefix=Prefix.parse(op[1]), origin=op[2],
    )


def coords(position):
    # Synthetic but monotonic coordinates; answers never look inside them
    # beyond the final record count.
    return {
        "records": position,
        "alarm_bytes": position * 10,
        "feed_bytes": position * 100,
    }


@settings(max_examples=60, deadline=None)
@given(
    sequence=ops,
    cut_seed=st.integers(min_value=0, max_value=2**30),
    alarm_positions=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=59),
            st.sampled_from(PREFIXES),
            st.sampled_from(KINDS),
        ),
        max_size=10,
    ),
)
def test_segmented_fold_equals_flat_fold(sequence, cut_seed, alarm_positions):
    n = len(sequence)
    rows = sorted(
        (
            (prefix, [pos + 0.25, kind, [3, 7], None, None])
            for pos, prefix, kind in alarm_positions
            if pos < n
        ),
        key=lambda item: item[1][0],
    )

    # Derive segmentation points from the seed: every position is a cut
    # with probability 1/3, giving segments of wildly varying width
    # (including empty ones, which assemble to None).
    cuts = [pos for pos in range(1, n) if (cut_seed >> (pos % 30)) & 1 and pos % 3 != 0]
    bounds = [0] + cuts + [n]

    tracker = OriginTracker()
    flat_events = []
    segmented = StoreState()
    seq = 0
    for lo, hi in zip(bounds, bounds[1:]):
        chunk_events = []
        for position in range(lo, hi):
            event = tracker.apply(record_for(sequence[position], position))
            if event is not None:
                chunk_events.append(event)
                flat_events.append(event)
        chunk_rows = [row for row in rows if lo <= row[1][0] < hi]
        seq += 1
        doc = assemble_segment(seq, coords(lo), coords(hi), chunk_events, chunk_rows)
        if doc is not None:
            segmented.fold_segment(doc)

    flat = StoreState()
    flat.fold_events(flat_events, rows)
    flat.records = n
    segmented.records = n

    assert canonical_json(answers_doc(segmented)) == canonical_json(
        answers_doc(flat)
    )
