"""Stream/batch equivalence: the online detector over a diffed feed must
reproduce the snapshot-based observer's daily MOAS counts exactly.

This is the ISSUE's parity acceptance criterion.  The daily count depends
only on which origins are live at each tick — never on MOAS-list contents —
so both diff mode (births coordinated, additions unilateral) and refresh
mode (everything re-announced daily) must agree with the batch path.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.measurement_repro import run_measurement_study
from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.engine import StreamEngine
from repro.stream.feed import snapshot_deltas


def stream_daily_counts(config, seed, refresh=False):
    generator = TraceGenerator(config, random.Random(seed))
    engine = StreamEngine(window=float(config.days) + 1.0)
    for record in snapshot_deltas(generator.snapshots(), refresh=refresh):
        engine.apply(record)
    return engine.daily_counts


def batch_daily_counts(config, seed):
    result = run_measurement_study(config, seed=seed, duration_cutoff=config.days)
    return dict(result.observer.daily_counts)


SMALL_FAULTED = TraceConfig(
    days=60,
    active_start=40,
    active_end=60,
    faults=(FaultSpike(day=30, faulty_as=8584, n_prefixes=25),),
    n_background_prefixes=120,
    n_origin_pool=300,
)


class TestSmallTraceParity:
    def test_diff_feed_matches_batch(self):
        assert stream_daily_counts(SMALL_FAULTED, 3) == batch_daily_counts(
            SMALL_FAULTED, 3
        )

    def test_refresh_feed_matches_batch(self):
        assert stream_daily_counts(SMALL_FAULTED, 3, refresh=True) == (
            batch_daily_counts(SMALL_FAULTED, 3)
        )

    def test_parity_across_seeds(self):
        for seed in (1, 2, 5):
            assert stream_daily_counts(SMALL_FAULTED, seed) == (
                batch_daily_counts(SMALL_FAULTED, seed)
            ), f"seed {seed}"

    def test_background_prefixes_do_not_perturb_counts(self):
        with_bg = TraceConfig(
            days=30, active_start=20, active_end=30, faults=(),
            n_background_prefixes=80, include_background=True,
        )
        without_bg = TraceConfig(
            days=30, active_start=20, active_end=30, faults=(),
            n_background_prefixes=80, include_background=False,
        )
        assert stream_daily_counts(with_bg, 4) == batch_daily_counts(without_bg, 4)


@pytest.mark.slow
class TestFullTraceParity:
    def test_full_paper_trace_figure4_parity(self):
        # The full 1279-day paper-calibrated trace, default faults included:
        # the stream path must land on the identical Figure 4 series.
        config = TraceConfig()
        stream = stream_daily_counts(config, 42)
        batch = batch_daily_counts(config, 42)
        assert len(stream) == config.days
        assert stream == batch
        # Sanity: the 1998 fault spike is visible on both paths.
        fault_day = config.faults[0].day
        assert stream[fault_day] > stream[fault_day - 1] + 500
