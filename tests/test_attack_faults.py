"""Unit tests for operational fault models."""

import random

import pytest

from repro.attack.faults import DeaggregationFault, MassFalseOriginationFault
from repro.net.addresses import Prefix

UNIVERSE = [Prefix((10 << 24) | (i << 16), 16) for i in range(100)]


class TestMassFalseOrigination:
    def test_generates_requested_count(self):
        fault = MassFalseOriginationFault(day=10, faulty_as=8584, count=25)
        event = fault.generate(UNIVERSE, random.Random(0))
        assert event.scale == 25
        assert event.day == 10
        assert event.faulty_as == 8584
        assert event.kind == "mass-false-origination"

    def test_victims_from_universe(self):
        fault = MassFalseOriginationFault(day=0, faulty_as=1, count=10)
        event = fault.generate(UNIVERSE, random.Random(1))
        assert all(p in UNIVERSE for p in event.prefixes)

    def test_count_capped_by_universe(self):
        fault = MassFalseOriginationFault(day=0, faulty_as=1, count=10_000)
        event = fault.generate(UNIVERSE, random.Random(0))
        assert event.scale == len(UNIVERSE)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            MassFalseOriginationFault(day=0, faulty_as=1, count=0)

    def test_no_duplicate_victims(self):
        fault = MassFalseOriginationFault(day=0, faulty_as=1, count=50)
        event = fault.generate(UNIVERSE, random.Random(2))
        assert len(set(event.prefixes)) == len(event.prefixes)


class TestDeaggregation:
    def test_specifics_are_more_specific(self):
        fault = DeaggregationFault(day=0, faulty_as=7007, count=5, target_length=24)
        event = fault.generate(UNIVERSE, random.Random(0))
        assert event.kind == "deaggregation"
        for specific in event.prefixes:
            assert specific.length == 24
            assert any(parent.contains(specific) for parent in UNIVERSE)

    def test_specifics_per_prefix(self):
        fault = DeaggregationFault(
            day=0, faulty_as=7007, count=3, target_length=24, specifics_per_prefix=4
        )
        event = fault.generate(UNIVERSE, random.Random(0))
        assert event.scale == 12

    def test_only_shorter_prefixes_eligible(self):
        longs = [Prefix((10 << 24) | (i << 8), 24) for i in range(10)]
        fault = DeaggregationFault(day=0, faulty_as=1, count=5, target_length=24)
        event = fault.generate(longs, random.Random(0))
        assert event.scale == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeaggregationFault(day=0, faulty_as=1, count=0)
        with pytest.raises(ValueError):
            DeaggregationFault(day=0, faulty_as=1, count=1, target_length=0)
        with pytest.raises(ValueError):
            DeaggregationFault(day=0, faulty_as=1, count=1, specifics_per_prefix=0)
