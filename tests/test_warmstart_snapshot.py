"""Mid-flight snapshot/restore round-trips.

The warm-start runner only snapshots at quiescence, but the protocol is
specified (and tested here) for the harder case: live MRAI timers, messages
in flight on links, half-open sessions and damping penalties mid-decay.
The invariant under test is always the same — *continuing a restored
network is bit-identical to continuing the original* — plus the refusal
cases (foreign queue events, topology mismatch) that keep the protocol
honest.
"""

import pytest

from repro.bgp.damping import DampingConfig, RouteFlapDamper
from repro.bgp.network import Network
from repro.bgp.speaker import SpeakerConfig
from repro.eventsim.simulator import Simulator, SnapshotError
from repro.net.addresses import Prefix
from repro.topology.asgraph import ASGraph, ASRole

PREFIX = Prefix.parse("203.0.113.0/24")


def line_graph(n=4):
    graph = ASGraph()
    for asn in range(1, n + 1):
        role = ASRole.TRANSIT if 1 < asn < n else ASRole.STUB
        graph.add_as(asn, role)
    for asn in range(1, n):
        graph.add_link(asn, asn + 1)
    return graph


def build(graph, config, seed=0):
    return Network(graph, sim=Simulator(seed=seed), config=config)


def final_state(network):
    """Full end-state fingerprint: every speaker, link and the clock."""
    return network.snapshot_state()


class TestMidFlightRoundTrip:
    def test_pending_mrai_timers_and_in_flight_messages(self):
        graph = line_graph(5)
        config = SpeakerConfig(mrai=5.0)
        original = build(graph, config)
        original.establish_sessions()
        original.originate(1, PREFIX)
        # Stop mid-propagation: MRAI timers are running and updates are in
        # flight on the middle links.
        original.sim.run(until=original.sim.now + 0.015)
        state = original.snapshot_state()
        assert len(original.sim.queue) > 0  # genuinely mid-flight

        clone = build(graph, config)
        clone.restore_state(state)

        original.run_to_convergence()
        clone.run_to_convergence()
        assert clone.best_origins(PREFIX) == original.best_origins(PREFIX)
        assert clone.sim.now == original.sim.now
        assert clone.sim.events_processed == original.sim.events_processed
        assert final_state(clone) == final_state(original)

    def test_half_open_session_with_open_in_flight(self):
        graph = line_graph(2)
        config = SpeakerConfig(hold_time=30.0)
        original = build(graph, config)
        original.speakers[1].start_session(2)
        # Half the link delay: the OPEN is still on the wire, the session
        # half-open on both ends.
        original.sim.run(until=original.links[(1, 2)].delay / 2)
        assert not original.speakers[1].sessions[2].established
        state = original.snapshot_state()

        clone = build(graph, config)
        clone.restore_state(state)

        # With keepalives on the queue never drains; run both to the same
        # horizon instead.
        horizon = original.sim.now + 90.0
        original.sim.run(until=horizon)
        clone.sim.run(until=horizon)
        assert original.speakers[1].sessions[2].established
        assert clone.speakers[1].sessions[2].established
        assert final_state(clone) == final_state(original)

    def test_damping_penalty_mid_decay(self):
        graph = line_graph(2)
        config = SpeakerConfig()
        damping = DampingConfig(half_life=10.0)
        original = build(graph, config)
        original_damper = RouteFlapDamper(damping)
        original_damper.attach(original.speakers[2])
        original.establish_sessions()
        # Three flaps: announce, withdraw, re-announce.
        original.originate(1, PREFIX)
        original.run_to_convergence()
        original.speakers[1].withdraw_origination(PREFIX)
        original.run_to_convergence()
        original.originate(1, PREFIX)
        original.run_to_convergence()
        # Let the penalty decay partway, then capture mid-decay.
        original.sim.run(until=original.sim.now + 7.0)
        assert original_damper.penalty(1, PREFIX) > 0.0
        state = original.snapshot_state()
        damper_state = original_damper.snapshot_state()

        clone = build(graph, config)
        clone_damper = RouteFlapDamper(damping)
        clone_damper.attach(clone.speakers[2])
        clone.restore_state(state)
        clone_damper.restore_state(damper_state)

        assert clone_damper.penalty(1, PREFIX) == original_damper.penalty(
            1, PREFIX
        )
        horizon = original.sim.now + 25.0
        original.sim.run(until=horizon)
        clone.sim.run(until=horizon)
        assert clone_damper.penalty(1, PREFIX) == original_damper.penalty(
            1, PREFIX
        )
        assert clone_damper.is_suppressed(1, PREFIX) == (
            original_damper.is_suppressed(1, PREFIX)
        )
        assert clone_damper.snapshot_state() == original_damper.snapshot_state()

    def test_restore_is_repeatable_after_reset(self):
        """reset() returns a restored simulator to pristine state, and the
        same snapshot restores identically a second time — the cached
        snapshot is never aliased by the continuation that used it."""
        graph = line_graph(4)
        config = SpeakerConfig(mrai=5.0)
        original = build(graph, config)
        original.establish_sessions()
        original.originate(1, PREFIX)
        original.sim.run(until=original.sim.now + 0.015)
        state = original.snapshot_state()

        clone = build(graph, config)
        clone.restore_state(state)
        clone.run_to_convergence()
        first = final_state(clone)

        clone.sim.reset()
        assert clone.sim.now == 0.0
        assert clone.sim.events_processed == 0
        assert len(clone.sim.queue) == 0

        clone.restore_state(state)
        clone.run_to_convergence()
        assert final_state(clone) == first


class TestRefusals:
    def test_foreign_queue_event_refuses_snapshot(self):
        graph = line_graph(2)
        network = build(graph, SpeakerConfig())
        network.establish_sessions()
        network.sim.schedule_after(1.0, lambda: None, label="foreign")
        with pytest.raises(SnapshotError, match="foreign"):
            network.snapshot_state()

    def test_topology_mismatch_refuses_restore(self):
        config = SpeakerConfig()
        small = build(line_graph(2), config)
        small.establish_sessions()
        state = small.snapshot_state()
        big = build(line_graph(3), config)
        with pytest.raises(SnapshotError, match="topology"):
            big.restore_state(state)

    def test_snapshot_mid_run_refuses(self):
        network = build(line_graph(2), SpeakerConfig())
        captured = []

        def grab():
            with pytest.raises(SnapshotError, match="run"):
                network.sim.snapshot_state()
            captured.append(True)

        network.sim.schedule_after(0.0, grab)
        network.sim.run_to_quiescence()
        assert captured == [True]


class TestSeedFreedom:
    def test_untouched_streams_are_seed_free(self):
        from repro.warmstart import snapshot_is_seed_free

        network = build(line_graph(2), SpeakerConfig())
        network.establish_sessions()
        assert snapshot_is_seed_free(network.snapshot_state())

    def test_consumed_stream_is_seed_dependent(self):
        from repro.warmstart import snapshot_is_seed_free

        network = build(line_graph(2), SpeakerConfig())
        network.establish_sessions()
        network.sim.random.stream("jitter").random()
        assert not snapshot_is_seed_free(network.snapshot_state())
