"""Tests for topology rendering and the trace→dump bridge."""

import random

from repro.core.monitor import OfflineMonitor
from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.topology import ASGraph
from repro.topology.render import to_adjacency_text, to_dot
from repro.topology.routeviews import parse_table_dump, render_table_dump


class TestDot:
    def setup_method(self):
        self.graph = ASGraph.from_edges([(1, 2), (2, 3)], transit=[2])

    def test_valid_dot_structure(self):
        dot = to_dot(self.graph)
        assert dot.startswith("graph topology {")
        assert dot.rstrip().endswith("}")
        assert '"1" -- "2";' in dot
        assert '"2" -- "3";' in dot

    def test_roles_shape_nodes(self):
        dot = to_dot(self.graph)
        assert '"2" [shape=box];' in dot          # transit
        assert '"1" [shape=ellipse];' in dot      # stub

    def test_highlighting(self):
        dot = to_dot(self.graph, highlight=[3])
        assert '"3" [shape=ellipse, color=red, penwidth=2];' in dot

    def test_custom_name(self):
        assert to_dot(self.graph, name="fig8").startswith("graph fig8 {")

    def test_adjacency_text(self):
        text = to_adjacency_text(self.graph)
        assert "2 [T]: 1 3" in text
        assert "1 [S]: 2" in text


class TestTraceTableBridge:
    def make_generator(self):
        config = TraceConfig(
            days=10,
            active_start=20,
            active_end=25,
            faults=(FaultSpike(day=5, faulty_as=8584, n_prefixes=10),),
            n_background_prefixes=50,
            n_origin_pool=100,
        )
        return TraceGenerator(config, random.Random(0))

    def test_table_covers_snapshot(self):
        gen = self.make_generator()
        day, snapshot = next(gen.snapshots())
        table = gen.render_table(day, snapshot)
        assert set(table.prefixes()) == set(snapshot)
        # Every origin of every prefix appears in the dump.
        origins = table.origins_by_prefix()
        for prefix, expected in snapshot.items():
            assert origins[prefix] == expected

    def test_dump_roundtrips(self):
        gen = self.make_generator()
        day, snapshot = next(gen.snapshots())
        table = gen.render_table(day, snapshot)
        parsed = parse_table_dump(render_table_dump(table))
        assert parsed.origins_by_prefix() == table.origins_by_prefix()

    def test_monitor_flags_fault_day(self):
        """The full §3/§4.2 loop over the synthetic archive: the off-line
        monitor flags the fault-day MOAS conflicts."""
        gen = self.make_generator()
        monitor = OfflineMonitor()
        conflicts_by_day = {}
        for day, snapshot in gen.snapshots():
            report = monitor.check_table(gen.render_table(day, snapshot))
            conflicts_by_day[day] = len(report.conflicts)
        # The fault victims appear with the faulty extra origin and no
        # agreed list -> flagged (footnote-3 lists conflict), standing out
        # as a spike of ~10 extra conflicts over the neighbouring days.
        assert conflicts_by_day[5] >= conflicts_by_day[4] + 8
        assert conflicts_by_day[5] >= conflicts_by_day[6] + 8
