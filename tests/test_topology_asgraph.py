"""Unit tests for the AS graph."""

import pytest

from repro.topology import ASGraph, ASRole


class TestConstruction:
    def test_from_edges_assigns_roles(self):
        g = ASGraph.from_edges([(1, 2), (2, 3)], transit=[2])
        assert g.role(2) is ASRole.TRANSIT
        assert g.role(1) is ASRole.STUB
        assert g.transit_asns() == [2]
        assert g.stub_asns() == [1, 3]

    def test_self_loop_rejected(self):
        g = ASGraph()
        with pytest.raises(ValueError):
            g.add_link(1, 1)

    def test_add_link_creates_nodes(self):
        g = ASGraph()
        g.add_link(1, 2)
        assert 1 in g and 2 in g

    def test_invalid_asn_rejected(self):
        g = ASGraph()
        with pytest.raises(Exception):
            g.add_as(0)

    def test_set_role_unknown_as(self):
        g = ASGraph()
        with pytest.raises(KeyError):
            g.set_role(1, ASRole.TRANSIT)


class TestQueries:
    def setup_method(self):
        self.g = ASGraph.from_edges(
            [(1, 2), (2, 3), (3, 4), (2, 4)], transit=[2, 3]
        )

    def test_len_and_links(self):
        assert len(self.g) == 4
        assert self.g.num_links() == 4

    def test_neighbors_sorted(self):
        assert self.g.neighbors(2) == [1, 3, 4]

    def test_neighbors_unknown_as(self):
        with pytest.raises(KeyError):
            self.g.neighbors(99)

    def test_degree(self):
        assert self.g.degree(2) == 3
        assert self.g.degree(1) == 1

    def test_has_link_symmetric(self):
        assert self.g.has_link(1, 2)
        assert self.g.has_link(2, 1)
        assert not self.g.has_link(1, 4)

    def test_average_degree(self):
        assert self.g.average_degree() == pytest.approx(2.0)

    def test_degree_histogram(self):
        assert self.g.degree_histogram() == {1: 1, 2: 2, 3: 1}

    def test_edges_canonical(self):
        for a, b in self.g.edges():
            assert a < b

    def test_shortest_path_length(self):
        assert self.g.shortest_path_length(1, 4) == 2


class TestConnectivity:
    def test_connected(self):
        g = ASGraph.from_edges([(1, 2), (2, 3)])
        assert g.is_connected()

    def test_disconnected(self):
        g = ASGraph.from_edges([(1, 2), (3, 4)])
        assert not g.is_connected()
        components = g.connected_components()
        assert {frozenset({1, 2}), frozenset({3, 4})} == set(components)

    def test_largest_component(self):
        g = ASGraph.from_edges([(1, 2), (2, 3), (4, 5)])
        assert g.largest_component() == frozenset({1, 2, 3})

    def test_empty_graph_connected(self):
        assert ASGraph().is_connected()


class TestDerivation:
    def test_subgraph_preserves_roles_and_edges(self):
        g = ASGraph.from_edges([(1, 2), (2, 3), (1, 3)], transit=[2])
        sub = g.subgraph([1, 2])
        assert len(sub) == 2
        assert sub.has_link(1, 2)
        assert sub.role(2) is ASRole.TRANSIT

    def test_subgraph_unknown_as_rejected(self):
        g = ASGraph.from_edges([(1, 2)])
        with pytest.raises(KeyError):
            g.subgraph([1, 99])

    def test_copy_is_independent(self):
        g = ASGraph.from_edges([(1, 2)])
        clone = g.copy()
        clone.remove_as(1)
        assert 1 in g
        assert 1 not in clone

    def test_remove_as(self):
        g = ASGraph.from_edges([(1, 2), (2, 3)])
        g.remove_as(2)
        assert len(g) == 2
        assert g.num_links() == 0
        with pytest.raises(KeyError):
            g.remove_as(2)

    def test_to_networkx_is_copy(self):
        g = ASGraph.from_edges([(1, 2)])
        nxg = g.to_networkx()
        nxg.remove_node(1)
        assert 1 in g
