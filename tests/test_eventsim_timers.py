"""Unit tests for one-shot and periodic timers."""

import pytest

from repro.eventsim import PeriodicTimer, Timer


class TestTimer:
    def test_negative_duration_rejected(self, sim):
        with pytest.raises(ValueError):
            Timer(sim, -1.0, lambda: None)

    def test_not_armed_at_construction(self, sim):
        timer = Timer(sim, 1.0, lambda: None)
        assert not timer.running
        sim.run()
        assert sim.now == 0.0

    def test_fires_after_duration(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        assert fired == [2.0]
        assert not timer.running

    def test_double_start_rejected(self, sim):
        timer = Timer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(1))
        timer.start()
        timer.stop()
        sim.run()
        assert fired == []

    def test_stop_idempotent(self, sim):
        timer = Timer(sim, 1.0, lambda: None)
        timer.stop()
        timer.stop()

    def test_restart_extends_deadline(self, sim):
        fired = []
        timer = Timer(sim, 2.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule_at(1.0, timer.restart)
        sim.run()
        assert fired == [3.0]

    def test_expires_at(self, sim):
        timer = Timer(sim, 2.0, lambda: None)
        assert timer.expires_at is None
        timer.start()
        assert timer.expires_at == 2.0

    def test_can_restart_after_firing(self, sim):
        fired = []
        timer = Timer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run()
        timer.start()
        sim.run()
        assert fired == [1.0, 2.0]


class TestPeriodicTimer:
    def test_non_positive_period_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_fires_repeatedly(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule_at(3.5, timer.stop)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_stop_from_own_action(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: (fired.append(sim.now), timer.stop()))
        timer.start()
        sim.run()
        assert fired == [1.0]

    def test_double_start_rejected(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_restartable_after_stop(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule_at(1.5, timer.stop)
        sim.run(until=2.0)
        timer.start()
        sim.schedule_at(3.5, timer.stop)
        sim.run()
        assert fired == [1.0, 3.0]
