"""Unit tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").snapshot() == 0

    def test_inc_defaults_to_one(self):
        counter = Counter("c")
        counter.inc()
        counter.inc()
        assert counter.snapshot() == 2

    def test_inc_by_amount(self):
        counter = Counter("c")
        counter.inc(5)
        counter.inc(0)
        assert counter.snapshot() == 5

    def test_negative_increment_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.snapshot() == 0


class TestGauge:
    def test_starts_at_zero(self):
        assert Gauge("g").snapshot() == {"value": 0.0, "max": 0.0}

    def test_set_tracks_last_value_and_max(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.set(7.0)
        gauge.set(2.0)
        assert gauge.snapshot() == {"value": 2.0, "max": 7.0}

    def test_first_write_defines_max_even_when_negative(self):
        gauge = Gauge("g")
        gauge.set(-5.0)
        assert gauge.snapshot() == {"value": -5.0, "max": -5.0}
        gauge.set(-10.0)
        assert gauge.snapshot() == {"value": -10.0, "max": -5.0}


class TestHistogram:
    def test_requires_bounds(self):
        with pytest.raises(ValueError, match="at least one bound"):
            Histogram("h", bounds=())

    @pytest.mark.parametrize("bad", [(1.0, 1.0), (5.0, 2.0)])
    def test_bounds_must_strictly_increase(self, bad):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", bounds=bad)

    def test_observations_land_in_inclusive_buckets(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(1.0)   # first bucket (inclusive upper bound)
        hist.observe(2.0)   # second bucket
        hist.observe(10.0)  # second bucket
        hist.observe(11.0)  # overflow bucket
        assert hist.snapshot() == {
            "count": 4,
            "sum": 24.0,
            "buckets": [1, 2, 1],
        }

    def test_mean(self):
        hist = Histogram("h", bounds=(100.0,))
        assert hist.mean == 0.0
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.mean == 3.0

    def test_default_buckets_get_one_overflow(self):
        hist = Histogram("h")
        assert hist.bounds == DEFAULT_BUCKETS
        assert len(hist.bucket_counts) == len(DEFAULT_BUCKETS) + 1


class TestRegistry:
    def test_create_or_get_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("sim.events")
        first.inc(3)
        again = registry.counter("sim.events")
        assert again is first
        assert again.snapshot() == 3

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered as Counter"):
            registry.gauge("x")
        with pytest.raises(TypeError, match="already registered as Counter"):
            registry.histogram("x")

    def test_contains_and_len(self):
        registry = MetricsRegistry()
        assert "a" not in registry
        registry.counter("a")
        registry.gauge("b")
        assert "a" in registry
        assert len(registry) == 2

    def test_empty_registry_is_falsy(self):
        # Because the registry defines __len__, an empty one is falsy —
        # which is why instrumented modules must guard with "is not None",
        # never truthiness.  Pin the trap down so it stays documented.
        registry = MetricsRegistry()
        assert not registry
        assert registry is not None

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z.last")
        registry.counter("a.first")
        registry.gauge("m.middle")
        assert registry.names() == ["a.first", "m.middle", "z.last"]

    def test_snapshot_is_json_safe_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b.count").inc(2)
        registry.gauge("a.depth").set(4.0)
        registry.histogram("c.sizes", bounds=(10.0,)).observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == ["a.depth", "b.count", "c.sizes"]
        assert snapshot["b.count"] == 2
        assert snapshot["a.depth"] == {"value": 4.0, "max": 4.0}
        assert snapshot["c.sizes"] == {"count": 1, "sum": 3.0, "buckets": [1, 0]}
        # Round-trips through JSON unchanged (manifest requirement).
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_of_empty_registry(self):
        assert MetricsRegistry().snapshot() == {}
