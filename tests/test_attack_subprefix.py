"""Tests for the sub-prefix hijack — the §4.3 longest-match blind spot."""

import pytest

from repro.attack.models import SubPrefixHijack
from repro.bgp.forwarding import DeliveryOutcome, delivery_census, trace_packet
from repro.bgp.network import Network
from repro.core.alarms import AlarmLog
from repro.core.checker import MoasChecker
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


def run(chain_graph, detect):
    registry = PrefixOriginRegistry()
    registry.register(P, [1])
    log = AlarmLog()
    net = Network(chain_graph)
    if detect:
        oracle = GroundTruthOracle(registry)
        for asn in (2, 3, 4):
            MoasChecker(oracle=oracle, alarm_log=log).attach(net.speaker(asn))
    net.establish_sessions()
    net.originate(1, P)
    net.run_to_convergence()
    strategy = SubPrefixHijack(specific_length=24)
    strategy.launch(net, 5, P, frozenset({1}))
    net.run_to_convergence()
    return net, log, strategy.more_specific_of(P)


class TestMechanics:
    def test_more_specific_inside_victim_block(self):
        strategy = SubPrefixHijack(specific_length=24)
        specific = strategy.more_specific_of(P)
        assert specific.length == 24
        assert P.contains(specific)

    def test_cannot_deaggregate_past_target(self):
        strategy = SubPrefixHijack(specific_length=24)
        with pytest.raises(ValueError):
            strategy.more_specific_of(Prefix.parse("10.0.0.0/24"))

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            SubPrefixHijack(specific_length=0)


class TestBlindSpot:
    def test_no_moas_conflict_no_alarm(self, chain_graph):
        """The bogus announcement names a different prefix: the MOAS lists
        for /16 and /24 never meet, so no checker alarms."""
        net, log, specific = run(chain_graph, detect=True)
        assert len(log) == 0

    def test_control_plane_looks_clean(self, chain_graph):
        net, log, specific = run(chain_graph, detect=True)
        # Every AS still believes the /16 originates at AS 1...
        assert all(
            v == 1 for a, v in net.best_origins(P).items() if a != 5
        )
        # ...while the /24 spreads unopposed.
        assert all(
            v == 5 for v in net.best_origins(specific).values()
        )

    def test_data_plane_captured_everywhere(self, chain_graph):
        """Longest match hands the covered addresses to the attacker from
        every AS — worse than an equal-prefix hijack, which only wins
        where the attacker is closer."""
        net, _, specific = run(chain_graph, detect=True)
        census = delivery_census(
            net, specific, legitimate_origins=[1], exclude=[5]
        )
        assert census[DeliveryOutcome.HIJACKED] == [1, 2, 3, 4]

    def test_uncovered_addresses_still_delivered(self, chain_graph):
        """Only the announced /24 is captured; the rest of the /16 still
        reaches the genuine origin."""
        net, _, specific = run(chain_graph, detect=True)
        unaffected = Prefix.parse("10.0.128.0/24")  # outside the hijacked /24
        trace = trace_packet(net, 4, unaffected, legitimate_origins=[1])
        assert trace.outcome is DeliveryOutcome.DELIVERED
        assert trace.final_as == 1

    def test_detection_changes_nothing(self, chain_graph):
        """With and without MOAS checking, the outcome is identical —
        the scheme has no purchase on this attack class."""
        undefended, _, specific = run(chain_graph, detect=False)
        defended, _, _ = run(chain_graph, detect=True)
        assert (
            undefended.best_origins(specific) == defended.best_origins(specific)
        )
