"""Unit tests for MOAS duration accounting (Figure 5 semantics)."""

from repro.measurement.duration import DurationTracker
from repro.measurement.moas_observer import MoasCase
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


def case(day, prefix=P, origins=(1, 2)):
    return MoasCase(day=day, prefix=prefix, origins=frozenset(origins))


class TestDurationTracker:
    def test_single_day(self):
        tracker = DurationTracker()
        tracker.add_case(case(0))
        assert tracker.duration_of(P) == 1

    def test_non_contiguous_days_summed(self):
        """Paper: duration counts total MOAS days 'regardless of whether
        the days were continuous'."""
        tracker = DurationTracker()
        for day in (0, 5, 100):
            tracker.add_case(case(day))
        assert tracker.duration_of(P) == 3

    def test_different_origin_sets_same_prefix_accumulate(self):
        """'...regardless of whether the same set of origins was involved'."""
        tracker = DurationTracker()
        tracker.add_case(case(0, origins=(1, 2)))
        tracker.add_case(case(1, origins=(1, 3)))
        assert tracker.duration_of(P) == 2

    def test_same_day_idempotent(self):
        tracker = DurationTracker()
        tracker.add_case(case(0, origins=(1, 2)))
        tracker.add_case(case(0, origins=(3, 4)))
        assert tracker.duration_of(P) == 1

    def test_unknown_prefix_zero(self):
        assert DurationTracker().duration_of(P) == 0

    def test_histogram(self):
        tracker = DurationTracker()
        tracker.add_cases([case(0), case(1)])          # P: 2 days
        tracker.add_case(case(0, prefix=Q))             # Q: 1 day
        assert tracker.histogram() == {1: 1, 2: 1}

    def test_one_day_fraction(self):
        tracker = DurationTracker()
        tracker.add_cases([case(0), case(1)])  # P lasts 2 days
        tracker.add_case(case(0, prefix=Q))    # Q lasts 1 day
        assert tracker.one_day_fraction() == 0.5

    def test_one_day_fraction_empty(self):
        assert DurationTracker().one_day_fraction() == 0.0

    def test_total_cases(self):
        tracker = DurationTracker()
        tracker.add_case(case(0))
        tracker.add_case(case(0, prefix=Q))
        assert tracker.total_cases() == 2

    def test_durations_sorted(self):
        tracker = DurationTracker()
        tracker.add_cases([case(d) for d in range(3)])
        tracker.add_case(case(0, prefix=Q))
        assert tracker.durations() == [1, 3]

    def test_binned_histogram(self):
        tracker = DurationTracker()
        for day in range(10):
            tracker.add_case(case(day))          # P: 10 days
        tracker.add_case(case(0, prefix=Q))      # Q: 1 day
        bins = tracker.binned_histogram([1, 5])
        assert bins == [("1", 1), ("2-5", 0), (">5", 1)]
