"""Tests for the parallel scenario executor.

The load-bearing property is bit-identical results: a sweep run with a
process pool must produce exactly the points a serial run produces, or the
common-random-numbers discipline across deployment arms silently breaks.
"""

import pickle

import pytest

from repro.experiments.executor import (
    WORKERS_ENV_VAR,
    execute_scenarios,
    parallel_map,
    resolve_workers,
)
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.experiments.sweep import SweepConfig, build_sweep_scenarios, run_sweep
from repro.net.addresses import Prefix
from repro.topology.generators import generate_paper_topology

FRACS = (0.10, 0.30)


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


def _square(x):
    # Module-level so it is picklable by the process pool.
    return x * x


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers() == 4

    def test_blank_environment_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "   ")
        assert resolve_workers() == 1

    def test_malformed_environment_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_counts_rejected(self, bad):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(bad)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_parallel_path_preserves_order(self):
        assert parallel_map(_square, range(25), workers=2) == [
            x * x for x in range(25)
        ]

    def test_single_item_skips_pool(self):
        # One item never justifies pool startup; a lambda (unpicklable)
        # proves the serial path is taken.
        assert parallel_map(lambda x: x + 1, [41], workers=4) == [42]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


class TestPicklability:
    def test_prefix_roundtrip(self):
        prefix = Prefix.parse("10.2.0.0/16")
        clone = pickle.loads(pickle.dumps(prefix))
        assert clone == prefix
        assert hash(clone) == hash(prefix)
        assert str(clone) == str(prefix)

    def test_scenario_roundtrip(self, graph):
        config = SweepConfig(graph=graph, attacker_fractions=(0.10,),
                             n_origin_sets=1, n_attacker_sets=1)
        (_, _, scenarios), = build_sweep_scenarios(config)
        clone = pickle.loads(pickle.dumps(scenarios[0]))
        assert run_hijack_scenario(clone).poisoned == \
            run_hijack_scenario(scenarios[0]).poisoned


class TestDeterminism:
    def test_parallel_sweep_bit_identical_to_serial(self, graph):
        config = dict(graph=graph, attacker_fractions=FRACS,
                      n_origin_sets=2, n_attacker_sets=2)
        serial = run_sweep(SweepConfig(**config), workers=1)
        parallel = run_sweep(SweepConfig(**config), workers=4)
        assert parallel.points == serial.points

    def test_env_var_selects_workers(self, graph, monkeypatch):
        config = dict(graph=graph, attacker_fractions=(0.10,),
                      n_origin_sets=2, n_attacker_sets=1)
        serial = run_sweep(SweepConfig(**config), workers=1)
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        via_env = run_sweep(SweepConfig(**config))
        assert via_env.points == serial.points

    def test_execute_scenarios_matches_direct_runs(self, graph):
        config = SweepConfig(graph=graph, attacker_fractions=(0.10,),
                             n_origin_sets=2, n_attacker_sets=2,
                             deployment=DeploymentKind.FULL)
        (_, _, scenarios), = build_sweep_scenarios(config)
        direct = [run_hijack_scenario(s) for s in scenarios]
        pooled = execute_scenarios(scenarios, workers=2)
        assert [o.poisoned for o in pooled] == [o.poisoned for o in direct]
        assert [o.alarms for o in pooled] == [o.alarms for o in direct]


class TestThroughputCounters:
    def test_outcome_carries_counters(self, graph):
        ases = sorted(graph.asns())
        outcome = run_hijack_scenario(
            HijackScenario(graph=graph, origins=[ases[2]],
                           attackers=[ases[-1]],
                           deployment=DeploymentKind.FULL, seed=1)
        )
        assert outcome.events_processed > 0
        assert outcome.updates_sent > 0
        assert outcome.wall_seconds > 0.0
        assert outcome.events_per_sec > 0.0

    def test_events_per_sec_zero_without_wall_time(self):
        from repro.experiments.runner import HijackOutcome

        outcome = HijackOutcome(poisoned=frozenset(), n_remaining=5,
                                alarms=0, routes_suppressed=0,
                                capable=frozenset())
        assert outcome.events_per_sec == 0.0
