"""Tests for the parallel scenario executor.

The load-bearing property is bit-identical results: a sweep run with a
process pool must produce exactly the points a serial run produces, or the
common-random-numbers discipline across deployment arms silently breaks.
"""

import pickle

import pytest

from repro.experiments.executor import (
    WORKERS_ENV_VAR,
    ParallelTaskError,
    execute_scenarios,
    parallel_map,
    resolve_workers,
)
from repro.experiments.runner import (
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.experiments.sweep import SweepConfig, build_sweep_scenarios, run_sweep
from repro.net.addresses import Prefix
from repro.topology.generators import generate_paper_topology

FRACS = (0.10, 0.30)


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


def _square(x):
    # Module-level so it is picklable by the process pool.
    return x * x


class _SeededItem:
    """A picklable work item carrying a seed, like a HijackScenario."""

    def __init__(self, seed):
        self.seed = seed


def _fail_on_seed_13(item):
    if item.seed == 13:
        raise ValueError(f"boom at seed {item.seed}")
    return item.seed * 2


class TestResolveWorkers:
    def test_defaults_to_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers() == 1

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "8")
        assert resolve_workers(3) == 3

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "4")
        assert resolve_workers() == 4

    def test_blank_environment_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "   ")
        assert resolve_workers() == 1

    def test_malformed_environment_raises(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()

    def test_malformed_environment_error_is_unchained(self, monkeypatch):
        # The int() parse failure adds nothing to the message, so it is
        # suppressed with "raise ... from None".
        monkeypatch.setenv(WORKERS_ENV_VAR, "many")
        with pytest.raises(ValueError) as excinfo:
            resolve_workers()
        assert "REPRO_WORKERS must be an integer, got 'many'" in str(
            excinfo.value
        )
        assert excinfo.value.__cause__ is None
        assert excinfo.value.__suppress_context__ is True

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_counts_rejected(self, bad):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_workers(bad)


class TestParallelMap:
    def test_serial_path_preserves_order(self):
        assert parallel_map(_square, range(10), workers=1) == [
            x * x for x in range(10)
        ]

    def test_parallel_path_preserves_order(self):
        assert parallel_map(_square, range(25), workers=2) == [
            x * x for x in range(25)
        ]

    def test_single_item_skips_pool(self):
        # One item never justifies pool startup; a lambda (unpicklable)
        # proves the serial path is taken.
        assert parallel_map(lambda x: x + 1, [41], workers=4) == [42]

    def test_empty_input(self):
        assert parallel_map(_square, [], workers=4) == []


class TestFailureAttribution:
    ITEMS = [_SeededItem(seed) for seed in (7, 11, 13, 17)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_failure_names_index_and_seed(self, workers):
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_fail_on_seed_13, self.ITEMS, workers=workers)
        error = excinfo.value
        assert error.index == 2
        assert error.seed == 13
        assert "parallel task #2 (seed=13) failed" in str(error)
        assert "ValueError: boom at seed 13" in str(error)

    def test_serial_path_chains_the_original(self):
        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(_fail_on_seed_13, self.ITEMS, workers=1)
        cause = excinfo.value.__cause__
        assert isinstance(cause, ValueError)
        assert str(cause) == "boom at seed 13"

    def test_item_without_seed_reports_no_seed(self):
        def explode(x):
            raise RuntimeError("nope")

        with pytest.raises(ParallelTaskError, match=r"#0 \(no seed\)"):
            parallel_map(explode, [1], workers=1)

    def test_nested_attribution_not_rewrapped(self):
        def already_attributed(x):
            raise ParallelTaskError(99, 1234, "inner failure")

        with pytest.raises(ParallelTaskError) as excinfo:
            parallel_map(already_attributed, [0], workers=1)
        # The inner error's attribution survives; it is not wrapped again
        # with the outer index 0.
        assert excinfo.value.index == 99
        assert excinfo.value.seed == 1234

    def test_pickle_roundtrip_keeps_attributes(self):
        error = ParallelTaskError(5, 4242, "ValueError: boom")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, ParallelTaskError)
        assert clone.index == 5
        assert clone.seed == 4242
        assert clone.message == "ValueError: boom"
        assert str(clone) == str(error)


class TestPicklability:
    def test_prefix_roundtrip(self):
        prefix = Prefix.parse("10.2.0.0/16")
        clone = pickle.loads(pickle.dumps(prefix))
        assert clone == prefix
        assert hash(clone) == hash(prefix)
        assert str(clone) == str(prefix)

    def test_scenario_roundtrip(self, graph):
        config = SweepConfig(graph=graph, attacker_fractions=(0.10,),
                             n_origin_sets=1, n_attacker_sets=1)
        (_, _, scenarios), = build_sweep_scenarios(config)
        clone = pickle.loads(pickle.dumps(scenarios[0]))
        assert run_hijack_scenario(clone).poisoned == \
            run_hijack_scenario(scenarios[0]).poisoned


class TestDeterminism:
    def test_parallel_sweep_bit_identical_to_serial(self, graph):
        config = dict(graph=graph, attacker_fractions=FRACS,
                      n_origin_sets=2, n_attacker_sets=2)
        serial = run_sweep(SweepConfig(**config), workers=1)
        parallel = run_sweep(SweepConfig(**config), workers=4)
        assert parallel.points == serial.points

    def test_env_var_selects_workers(self, graph, monkeypatch):
        config = dict(graph=graph, attacker_fractions=(0.10,),
                      n_origin_sets=2, n_attacker_sets=1)
        serial = run_sweep(SweepConfig(**config), workers=1)
        monkeypatch.setenv(WORKERS_ENV_VAR, "2")
        via_env = run_sweep(SweepConfig(**config))
        assert via_env.points == serial.points

    def test_execute_scenarios_matches_direct_runs(self, graph):
        config = SweepConfig(graph=graph, attacker_fractions=(0.10,),
                             n_origin_sets=2, n_attacker_sets=2,
                             deployment=DeploymentKind.FULL)
        (_, _, scenarios), = build_sweep_scenarios(config)
        direct = [run_hijack_scenario(s) for s in scenarios]
        pooled = execute_scenarios(scenarios, workers=2)
        assert [o.poisoned for o in pooled] == [o.poisoned for o in direct]
        assert [o.alarms for o in pooled] == [o.alarms for o in direct]

    def test_manifest_path_matches_plain_path(self, graph, tmp_path):
        from repro.experiments.runner import outcomes_equivalent
        from repro.obs.manifest import read_manifest

        config = SweepConfig(graph=graph, attacker_fractions=(0.10,),
                             n_origin_sets=1, n_attacker_sets=2)
        (_, _, scenarios), = build_sweep_scenarios(config)
        plain = execute_scenarios(scenarios, workers=1)
        path = tmp_path / "run.jsonl"
        instrumented = execute_scenarios(scenarios, workers=1, manifest=path)
        # Instrumentation must not perturb the simulation.
        assert outcomes_equivalent(plain, instrumented)
        assert len(read_manifest(path)) == len(scenarios)


class TestThroughputCounters:
    def test_outcome_carries_counters(self, graph):
        ases = sorted(graph.asns())
        outcome = run_hijack_scenario(
            HijackScenario(graph=graph, origins=[ases[2]],
                           attackers=[ases[-1]],
                           deployment=DeploymentKind.FULL, seed=1)
        )
        assert outcome.events_processed > 0
        assert outcome.updates_sent > 0
        assert outcome.wall_seconds > 0.0
        assert outcome.events_per_sec > 0.0

    def test_events_per_sec_zero_without_wall_time(self):
        from repro.experiments.runner import HijackOutcome

        outcome = HijackOutcome(poisoned=frozenset(), n_remaining=5,
                                alarms=0, routes_suppressed=0,
                                capable=frozenset())
        assert outcome.events_per_sec == 0.0
