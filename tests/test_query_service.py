"""Integration: live-built indexes vs the brute-force scan oracle.

The load-bearing acceptance property: every query answer served from an
index — built live by the service, by the sharded router, offline, or
across a kill-and-resume — is **bit-identical** to a brute-force scan of
the raw feed + alarm log.  ``answers_doc`` bundles every answer (stats,
daily series, top-K under each key, every prefix report) into one
canonical JSON document, so a single string comparison covers the whole
query surface.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.obs.metrics import MetricsRegistry
from repro.query import QueryIndex, answers_doc, build_index, canonical_json, scan_state
from repro.query.segments import load_manifest
from repro.stream.checkpoint import load_checkpoint
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.router import FeedRouter
from repro.stream.service import StreamService

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)


def write_trace_feed(path, seed=7, config=TRACE_CONFIG):
    generator = TraceGenerator(config, random.Random(seed))
    with FeedWriter(path) as writer:
        return writer.write_all(snapshot_deltas(generator.snapshots()))


def scan_answers(feeds, alarms):
    return canonical_json(answers_doc(scan_state(feeds, alarms)))


def index_answers(index_dir):
    return canonical_json(answers_doc(QueryIndex(index_dir).state))


@pytest.fixture(scope="module")
def trace_feed(tmp_path_factory):
    root = tmp_path_factory.mktemp("queryfeed")
    feed = root / "feed.jsonl"
    write_trace_feed(feed)
    return feed


class TestServiceIndex:
    def test_live_index_matches_scan(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        service = StreamService(
            trace_feed, alarms, tmp_path / "cp.json",
            checkpoint_every=300, index=tmp_path / "idx",
        )
        summary = service.run()
        assert summary.alarms_emitted > 0
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_index_without_chain_matches_scan(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        StreamService(
            trace_feed, alarms, None, checkpoint_every=300,
            index=tmp_path / "idx",
        ).run()
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_interrupt_resume_catches_up(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        cp = tmp_path / "cp.json"
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300,
            max_records=1500, index=tmp_path / "idx",
        ).run()
        partial = QueryIndex(tmp_path / "idx")
        assert partial.records == load_checkpoint(cp).offset
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300,
            index=tmp_path / "idx",
        ).run(resume=True)
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_resume_without_prior_index_builds_from_scratch(
        self, tmp_path, trace_feed
    ):
        alarms = tmp_path / "alarms.log"
        cp = tmp_path / "cp.json"
        # First run never indexed; the resumed run starts indexing cold.
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300, max_records=1500,
        ).run()
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300,
            index=tmp_path / "idx",
        ).run(resume=True)
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_fresh_run_wipes_stale_index(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        idx = tmp_path / "idx"
        StreamService(
            trace_feed, alarms, None, checkpoint_every=300, index=idx
        ).run()
        stale_segments = sorted(p.name for p in idx.glob("seg-*.json"))
        assert stale_segments
        # A fresh short run must not serve leftovers from the longer one.
        StreamService(
            trace_feed, alarms, None, checkpoint_every=300,
            max_records=700, index=idx,
        ).run()
        index = QueryIndex(idx)
        assert index.records == 700
        manifest = load_manifest(idx)
        assert manifest is not None
        referenced = {entry["name"] for entry in manifest["segments"]}
        on_disk = {p.name for p in idx.glob("seg-*")}
        assert on_disk == referenced
        assert referenced < set(stale_segments)

    def test_stale_index_ahead_of_chain_is_rebuilt(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        # Index the full feed once (manifest far ahead of the short chain
        # below), then resume a *shorter* run against the same directory.
        StreamService(
            trace_feed, alarms, tmp_path / "cp_long.json",
            checkpoint_every=300, index=idx,
        ).run()
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300, max_records=900,
        ).run()
        StreamService(
            trace_feed, alarms, cp, checkpoint_every=300, index=idx,
        ).run(resume=True)
        assert index_answers(idx) == scan_answers([trace_feed], alarms)


class TestRouterIndex:
    def test_router_index_matches_scan(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        FeedRouter(
            [trace_feed], alarms, tmp_path / "cp.json",
            shards=2, checkpoint_every=400, index=tmp_path / "idx",
        ).run()
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_router_interrupt_resume_catches_up(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        cp = tmp_path / "cp.json"
        FeedRouter(
            [trace_feed], alarms, cp, shards=2, checkpoint_every=400,
            max_records=1500, index=tmp_path / "idx",
        ).run()
        FeedRouter(
            [trace_feed], alarms, cp, shards=2, checkpoint_every=400,
            index=tmp_path / "idx",
        ).run(resume=True)
        assert index_answers(tmp_path / "idx") == scan_answers(
            [trace_feed], alarms
        )

    def test_multi_feed_router_index_matches_scan(self, tmp_path):
        feed_a = tmp_path / "feed_a.jsonl"
        feed_b = tmp_path / "feed_b.jsonl"
        write_trace_feed(feed_a, seed=7)
        write_trace_feed(feed_b, seed=8)
        alarms = tmp_path / "alarms.log"
        FeedRouter(
            [feed_a, feed_b], alarms, tmp_path / "cp.json",
            shards=2, checkpoint_every=500, index=tmp_path / "idx",
        ).run()
        assert index_answers(tmp_path / "idx") == scan_answers(
            [feed_a, feed_b], alarms
        )


class TestOfflineBuild:
    def test_offline_build_matches_live_index(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        StreamService(
            trace_feed, alarms, None, checkpoint_every=300,
            index=tmp_path / "live",
        ).run()
        info = build_index(
            [trace_feed], alarms, tmp_path / "offline", segment_days=7
        )
        assert info["segments"] > 1
        assert index_answers(tmp_path / "offline") == index_answers(
            tmp_path / "live"
        )

    def test_segmentation_cadence_is_invisible_in_answers(
        self, tmp_path, trace_feed
    ):
        alarms = tmp_path / "alarms.log"
        StreamService(trace_feed, alarms, None).run()
        build_index([trace_feed], alarms, tmp_path / "fine", segment_days=1)
        build_index([trace_feed], alarms, tmp_path / "coarse", segment_days=1000)
        fine = QueryIndex(tmp_path / "fine")
        coarse = QueryIndex(tmp_path / "coarse")
        assert len(fine.state.prefixes) == len(coarse.state.prefixes)
        assert index_answers(tmp_path / "fine") == index_answers(
            tmp_path / "coarse"
        )

    def test_metrics_instruments_are_registered(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        StreamService(trace_feed, alarms, None).run()
        metrics = MetricsRegistry()
        build_index(
            [trace_feed], alarms, tmp_path / "idx",
            segment_days=7, metrics=metrics,
        )
        snapshot = metrics.snapshot()
        assert snapshot["query.segments"] > 0
        assert snapshot["query.manifest_writes"] > 0
        assert snapshot["query.events"] > 0
        reader_metrics = MetricsRegistry()
        QueryIndex(tmp_path / "idx", metrics=reader_metrics)
        assert reader_metrics.snapshot()["query.segments_loaded"] > 0


class TestSummaryParity:
    """Satellite: the service reports what the query layer serves."""

    def test_service_summary_exposes_engine_aggregates(
        self, tmp_path, trace_feed
    ):
        alarms = tmp_path / "alarms.log"
        service = StreamService(trace_feed, alarms, None)
        summary = service.run()
        assert summary.alarm_totals == service.engine.alarm_totals()
        assert summary.daily_series == service.engine.daily_series()
        assert sum(summary.alarm_totals.values()) >= summary.alarms_emitted
        doc = summary.to_dict()
        assert doc["alarm_totals"] == summary.alarm_totals
        assert doc["daily_series"] == summary.daily_series
        assert doc["moas_active"] == summary.moas_active

    def test_router_summary_matches_single_engine(self, tmp_path, trace_feed):
        alarms = tmp_path / "alarms.log"
        single = StreamService(trace_feed, alarms, None).run()
        routed = FeedRouter(
            [trace_feed], tmp_path / "alarms2.log", None, shards=2
        ).run()
        assert routed.alarm_totals == single.alarm_totals
        assert routed.daily_series == single.daily_series
        assert routed.moas_active == single.moas_active

    def test_daily_series_matches_query_daily_answer(
        self, tmp_path, trace_feed
    ):
        alarms = tmp_path / "alarms.log"
        service = StreamService(
            trace_feed, alarms, None, index=tmp_path / "idx"
        )
        summary = service.run()
        index = QueryIndex(tmp_path / "idx")
        assert [count for _, count in index.daily("moas")] == (
            summary.daily_series
        )


@pytest.mark.slow
class TestFullTraceAcceptance:
    """The ISSUE acceptance run: the full 1279-day default trace,
    including a SIGTERM kill mid-stream and a resume."""

    @pytest.fixture(scope="class")
    def full_feed(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("fulltrace")
        feed = root / "feed.jsonl"
        write_trace_feed(feed, config=TraceConfig())
        return feed

    def test_full_trace_index_is_bit_identical(self, tmp_path, full_feed):
        alarms = tmp_path / "alarms.log"
        StreamService(
            full_feed, alarms, tmp_path / "cp.json",
            checkpoint_every=5000, index=tmp_path / "idx",
        ).run()
        assert index_answers(tmp_path / "idx") == scan_answers(
            [full_feed], alarms
        )

    def test_sigterm_kill_and_resume_is_bit_identical(
        self, tmp_path, full_feed
    ):
        alarms = tmp_path / "alarms.log"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        env = dict(os.environ, PYTHONPATH="src")
        cmd = [
            sys.executable, "-m", "repro", "stream", "run", str(full_feed),
            "--alarms", str(alarms), "--checkpoint", str(cp),
            "--checkpoint-every", "2000", "--index", str(idx),
            "--batch", "64", "--throttle", "0.01",
        ]
        proc = subprocess.Popen(
            cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        )
        time.sleep(2.0)
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=60)
        assert proc.returncode == 0, err
        assert "resume with --resume" in out
        interrupted = load_checkpoint(cp).offset
        done = subprocess.run(
            [
                sys.executable, "-m", "repro", "stream", "run", str(full_feed),
                "--alarms", str(alarms), "--checkpoint", str(cp),
                "--checkpoint-every", "2000", "--index", str(idx), "--resume",
            ],
            env=env, capture_output=True, text=True, timeout=600,
        )
        assert done.returncode == 0, done.stderr
        final = load_checkpoint(cp).offset
        assert interrupted < final, "SIGTERM must have landed mid-stream"
        assert index_answers(idx) == scan_answers([full_feed], alarms)
