"""Tests for in-network DNS: the §2 circular dependency, made concrete."""

import pytest

from repro.bgp.network import Network
from repro.core.checker import MoasChecker
from repro.core.networked_dns import NetworkedDnsService
from repro.core.origin_verification import PrefixOriginRegistry
from repro.net.addresses import Prefix

VICTIM_PREFIX = Prefix.parse("10.0.0.0/16")
DNS_PREFIX = Prefix.parse("198.51.100.0/24")


@pytest.fixture
def setup(chain_graph):
    """Chain 1-2-3-4-5.  DNS server at AS 1 (same side as the genuine
    origin), genuine origin AS 1, attacker AS 5."""
    registry = PrefixOriginRegistry()
    registry.register(VICTIM_PREFIX, [1])
    net = Network(chain_graph)
    service = NetworkedDnsService(net, server_asn=1,
                                  service_prefix=DNS_PREFIX, registry=registry)
    net.establish_sessions()
    service.announce()
    net.run_to_convergence()
    return net, service


class TestReachability:
    def test_lookup_succeeds_with_healthy_routing(self, setup):
        net, service = setup
        oracle = service.oracle_for(4)
        assert oracle.authorised_origins(VICTIM_PREFIX) == frozenset({1})
        assert oracle.failures == 0

    def test_server_as_always_reaches_itself(self, setup):
        net, service = setup
        oracle = service.oracle_for(1)
        assert oracle.authorised_origins(VICTIM_PREFIX) == frozenset({1})

    def test_lookup_fails_when_partitioned(self, setup):
        net, service = setup
        # Cut AS 4 off from the DNS server.
        net.speaker(3).invalidate_route(2, DNS_PREFIX)
        # AS 4's route via 3 is now gone after re-convergence.
        net.run_to_convergence()
        # Force AS 3 and 4 to lose the DNS route entirely: take down the
        # session between 2 and 3.
        net.speaker(3).sessions[2].close()
        net.run_to_convergence()
        oracle = service.oracle_for(4)
        assert oracle.authorised_origins(VICTIM_PREFIX) is None
        assert oracle.failures == 1

    def test_unknown_as_rejected(self, chain_graph):
        net = Network(chain_graph)
        registry = PrefixOriginRegistry()
        registry.register(VICTIM_PREFIX, [1])
        with pytest.raises(ValueError):
            NetworkedDnsService(net, server_asn=99,
                                service_prefix=DNS_PREFIX, registry=registry)


class TestCircularDependency:
    def test_sequential_dns_hijack_is_caught_by_the_checkers(self, chain_graph):
        """Defence in depth: once routing to the DNS has converged, an
        attempt to hijack the DNS prefix itself is detected like any other
        prefix — the checkers adjudicate it through their still-working
        routes and suppress it."""
        registry = PrefixOriginRegistry()
        registry.register(VICTIM_PREFIX, [1])
        registry.register(DNS_PREFIX, [1])
        net = Network(chain_graph)
        service = NetworkedDnsService(net, server_asn=1,
                                      service_prefix=DNS_PREFIX,
                                      registry=registry)
        for asn in (3, 4):
            MoasChecker(oracle=service.oracle_for(asn)).attach(net.speaker(asn))
        net.establish_sessions()
        service.announce()
        net.speaker(1).originate(VICTIM_PREFIX)
        net.run_to_convergence()

        net.speaker(5).originate(DNS_PREFIX)
        net.run_to_convergence()
        assert net.best_origins(DNS_PREFIX)[4] == 1
        assert net.best_origins(DNS_PREFIX)[3] == 1

    def test_cold_start_dns_race_disables_verification(self, chain_graph):
        """The §2 circularity, for real: when the attacker's bogus DNS
        announcement wins the cold-start race at a router, that router's
        later lookups walk into the attacker and fail — it can detect
        conflicts but never adjudicate them, and the victim-prefix hijack
        sticks."""
        registry = PrefixOriginRegistry()
        registry.register(VICTIM_PREFIX, [1])
        registry.register(DNS_PREFIX, [1])
        net = Network(chain_graph)
        service = NetworkedDnsService(net, server_asn=1,
                                      service_prefix=DNS_PREFIX,
                                      registry=registry)
        checker_4 = MoasChecker(oracle=service.oracle_for(4))
        checker_4.attach(net.speaker(4))
        net.establish_sessions()

        # Cold start: genuine DNS announcement races the attacker's.
        service.announce()
        net.speaker(5).originate(DNS_PREFIX)
        net.run_to_convergence()
        # AS 4 sits next to the attacker: the bogus DNS route arrives
        # first and is shorter.  (The checker saw the conflict but its
        # lookup already walks into the attacker: cannot adjudicate.)
        assert net.best_origins(DNS_PREFIX)[4] == 5
        assert service.oracle_for(4).authorised_origins(VICTIM_PREFIX) is None

        # The victim-prefix hijack now sails through at AS 4.
        net.speaker(1).originate(VICTIM_PREFIX)
        net.speaker(5).originate(VICTIM_PREFIX)
        net.run_to_convergence()
        assert net.best_origins(VICTIM_PREFIX)[4] == 5
        assert len(checker_4.alarms) >= 1  # detected, not suppressible

    def test_checker_fails_open_without_dns(self, chain_graph):
        """With the DNS unreachable, the checker raises alarms but cannot
        suppress — degraded to alarm-only, never worse."""
        registry = PrefixOriginRegistry()
        registry.register(VICTIM_PREFIX, [1])
        net = Network(chain_graph)
        service = NetworkedDnsService(net, server_asn=1,
                                      service_prefix=DNS_PREFIX,
                                      registry=registry)
        checker = MoasChecker(oracle=service.oracle_for(4))
        checker.attach(net.speaker(4))
        net.establish_sessions()
        # The DNS prefix is never announced: lookups always fail.
        net.speaker(1).originate(VICTIM_PREFIX)
        net.run_to_convergence()
        net.speaker(5).originate(VICTIM_PREFIX)
        net.run_to_convergence()
        assert len(checker.alarms) >= 1          # conflict detected
        assert checker.routes_suppressed == 0    # but not adjudicable
        assert net.best_origins(VICTIM_PREFIX)[4] == 5
