"""Unit tests for study statistics and overhead accounting."""

import pytest

from repro.measurement.duration import DurationTracker
from repro.measurement.moas_observer import MoasCase, MoasObserver
from repro.measurement.stats import (
    median,
    moas_list_overhead_bytes,
    summarise_study,
)
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([1, 2, 3, 4]) == 2.5

    def test_single(self):
        assert median([7]) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


class TestSummarise:
    def build_study(self):
        observer = MoasObserver()
        tracker = DurationTracker()
        for day in range(10):
            snapshot = {P: frozenset({1, 2})}
            if day == 5:
                snapshot[Q] = frozenset({3, 4, 5})
            cases = observer.observe_snapshot(day, snapshot)
            tracker.add_cases(cases)
        return observer, tracker

    def test_summary_fields(self):
        observer, tracker = self.build_study()
        summary = summarise_study(
            observer, tracker, first_year_days=(0, 5), last_year_days=(5, 10)
        )
        assert summary.days_observed == 10
        assert summary.total_cases == 2
        assert summary.max_daily_count == 2
        assert summary.max_daily_day == 5
        assert summary.median_daily_first_year == 1
        assert summary.one_day_fraction == 0.5  # Q lasted one day
        assert summary.two_origin_share == 0.5
        assert summary.three_origin_share == 0.5

    def test_empty_study_rejected(self):
        with pytest.raises(ValueError):
            summarise_study(MoasObserver(), DurationTracker())

    def test_rows_render(self):
        observer, tracker = self.build_study()
        summary = summarise_study(
            observer, tracker, first_year_days=(0, 5), last_year_days=(5, 10)
        )
        rows = dict(summary.rows())
        assert rows["days observed"] == "10"
        assert "one-day cases" in rows


class TestOverhead:
    def test_single_origin_costs_nothing(self):
        table = {P: frozenset({1})}
        assert moas_list_overhead_bytes(table) == 0

    def test_moas_costs_four_bytes_per_origin(self):
        table = {P: frozenset({1, 2}), Q: frozenset({1, 2, 3})}
        assert moas_list_overhead_bytes(table) == 8 + 12

    def test_moas_only_false_counts_everything(self):
        table = {P: frozenset({1})}
        assert moas_list_overhead_bytes(table, moas_only=False) == 4
