"""Unit tests for the repro-lint static analysis rules (R001-R006)."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import (
    RULES,
    LintConfig,
    Violation,
    format_json,
    format_text,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.cli import main as lint_main
from repro.lint.rules import iter_python_files

FIXTURES = Path(__file__).parent / "fixtures" / "lint"

#: Config under which the R005 class check fires for the fixture files.
SPEC_CONFIG = LintConfig(spec_modules=("*/r005_bad.py", "*/clean.py"))

#: Config under which the R008 hot-path check fires for the fixture files.
HOT_PATH_CONFIG = LintConfig(hot_path_modules=("*/r008_bad.py",))

#: Config under which the R009 sharded-module checks fire for the fixtures.
SHARDED_CONFIG = LintConfig(sharded_modules=("*/r009_bad.py",))


def rules_hit(violations):
    return {v.rule for v in violations}


class TestRulePositives:
    def test_r001_unseeded_randomness(self):
        violations = lint_file(FIXTURES / "r001_bad.py")
        assert rules_hit(violations) == {"R001"}
        assert len(violations) >= 4  # random(), choice, seed, numpy.random

    def test_r001_from_random_import(self):
        violations = lint_source("from random import choice\n")
        assert rules_hit(violations) == {"R001"}

    def test_r002_wall_clock_sources(self):
        violations = lint_file(FIXTURES / "r002_bad.py")
        assert rules_hit(violations) == {"R002"}
        # time.time, perf_counter, datetime.now, os.urandom, uuid4.
        assert len(violations) >= 5

    def test_r002_secrets_import(self):
        violations = lint_source("import secrets\n")
        assert rules_hit(violations) == {"R002"}

    def test_r003_set_iteration(self):
        violations = lint_file(FIXTURES / "r003_bad.py")
        assert rules_hit(violations) == {"R003"}
        # for loop, list comprehension, list(), annotated parameter loop.
        assert len(violations) == 4

    def test_r003_direct_set_literal(self):
        violations = lint_source("for x in {3, 1, 2}:\n    print(x)\n")
        assert rules_hit(violations) == {"R003"}

    def test_r004_hash_in_sort_key(self):
        violations = lint_file(FIXTURES / "r004_bad.py")
        assert rules_hit(violations) == {"R004"}
        assert len(violations) == 3

    def test_r005_lambda_and_unpicklable_class(self):
        violations = lint_file(FIXTURES / "r005_bad.py", config=SPEC_CONFIG)
        assert rules_hit(violations) == {"R005"}
        messages = " ".join(v.message for v in violations)
        assert "lambda" in messages
        assert "FrozenThing" in messages

    def test_r005_class_check_only_in_spec_modules(self):
        # Without the spec-module config the lambda still trips, the class
        # definition does not.
        violations = lint_file(FIXTURES / "r005_bad.py")
        assert rules_hit(violations) == {"R005"}
        assert all("FrozenThing" not in v.message for v in violations)

    def test_r006_time_sleep(self):
        violations = lint_file(FIXTURES / "r006_bad.py")
        assert rules_hit(violations) == {"R006"}
        # time.sleep via the module, via `from time import sleep`, and
        # inside a function body.
        assert len(violations) == 3

    def test_r006_aliased_import(self):
        violations = lint_source("import time as t\nt.sleep(1)\n")
        assert rules_hit(violations) == {"R006"}

    def test_r006_renamed_direct_import(self):
        violations = lint_source("from time import sleep as snooze\nsnooze(1)\n")
        assert rules_hit(violations) == {"R006"}

    def test_r006_suppression(self):
        src = "import time\ntime.sleep(1)  # repro-lint: disable=R006\n"
        assert lint_source(src) == []

    def test_r006_injected_sleeper_ok(self):
        # Calling an injected sleeper is the sanctioned pattern.
        src = (
            "def run(sleeper):\n"
            "    sleeper(0.2)\n"
        )
        assert lint_source(src) == []

    def test_r006_referencing_time_sleep_without_calling_ok(self):
        # Handing time.sleep in as the *default* injectable is allowed at
        # the reference level; only calls block the event loop.
        src = "import time\ndefault_sleeper = time.sleep\n"
        assert lint_source(src) == []

    def test_r007_deepcopy(self):
        violations = lint_file(FIXTURES / "r007_bad.py")
        assert rules_hit(violations) == {"R007"}
        # The from-import itself, copy.deepcopy via the module, the direct
        # deepcopy call, and the call inside a function body.
        assert len(violations) == 4

    def test_r007_aliased_module_import(self):
        violations = lint_source("import copy as c\nx = c.deepcopy({})\n")
        assert rules_hit(violations) == {"R007"}

    def test_r007_renamed_direct_import(self):
        src = "from copy import deepcopy as clone\nx = clone({})\n"
        violations = lint_source(src)
        assert rules_hit(violations) == {"R007"}
        assert len(violations) == 2  # the import and the call

    def test_r007_shallow_copy_ok(self):
        # copy.copy is the sanctioned shallow copy; only deepcopy is banned.
        src = "import copy\nx = copy.copy({1: 'a'})\n"
        assert lint_source(src) == []

    def test_r007_suppression(self):
        src = (
            "import copy\n"
            "x = copy.deepcopy({})  # repro-lint: disable=R007\n"
        )
        assert lint_source(src) == []

    def test_r008_bare_construction_on_hot_path(self):
        violations = lint_file(FIXTURES / "r008_bad.py", config=HOT_PATH_CONFIG)
        assert rules_hit(violations) == {"R008"}
        # The bare PathAttributes and the bare AsPath; the two interner-
        # wrapped constructions are the blessed idiom and stay clean.
        assert len(violations) == 2

    def test_r008_only_fires_in_hot_path_modules(self):
        # The same fixture linted under the default config (whose hot-path
        # patterns name real bgp/ modules) is not a hot-path file.
        assert lint_file(FIXTURES / "r008_bad.py") == []

    def test_r008_interner_wrapped_ok(self):
        src = (
            "def f(interner, origin):\n"
            "    return interner.attributes(PathAttributes(origin=origin))\n"
        )
        assert lint_source(src, path="x/bgp/speaker.py") == []

    def test_r008_keyword_argument_wrapped_ok(self):
        src = (
            "def f(interner):\n"
            "    return interner.as_path(path=AsPath(((1,),)))\n"
        )
        assert lint_source(src, path="x/bgp/rib.py") == []

    def test_r008_dotted_constructor_flagged(self):
        src = (
            "from repro.bgp import attributes\n"
            "a = attributes.PathAttributes()\n"
        )
        violations = lint_source(src, path="x/bgp/session.py")
        assert rules_hit(violations) == {"R008"}

    def test_r008_suppression(self):
        src = "a = PathAttributes()  # repro-lint: disable=R008\n"
        assert lint_source(src, path="x/bgp/speaker.py") == []

    def test_r009_sharded_ordering_hazards(self):
        violations = lint_file(FIXTURES / "r009_bad.py", config=SHARDED_CONFIG)
        assert rules_hit(violations) == {"R009"}
        # Two id() calls, handle_update, handle_wire, sum over a set in a
        # merge path, set.pop() in a merge path.
        assert len(violations) == 6

    def test_r009_only_fires_in_sharded_modules(self):
        # The default config's sharded patterns name the real simulator
        # modules, so the fixture is an ordinary file — and none of its
        # hazards are hazards outside a shard boundary.
        assert lint_file(FIXTURES / "r009_bad.py") == []

    def test_r009_id_flagged_anywhere_in_sharded_module(self):
        src = "def f(x):\n    return id(x)\n"
        violations = lint_source(src, path="x/eventsim/sharded.py")
        assert rules_hit(violations) == {"R009"}

    def test_r009_merge_path_reduction_needs_sorted(self):
        src = (
            "def merge_slices(keys):\n"
            "    pending = set(keys)\n"
            "    return sum(k for k in pending)\n"
        )
        violations = lint_source(src, path="x/bgp/shardnet.py")
        assert rules_hit(violations) == {"R009"}

    def test_r009_sorted_merge_path_ok(self):
        src = (
            "def merge_slices(keys):\n"
            "    pending = set(keys)\n"
            "    return sum(k for k in sorted(pending))\n"
        )
        assert lint_source(src, path="x/bgp/shardnet.py") == []

    def test_r009_reduction_outside_merge_path_ok(self):
        # Outside a merge/drain path the R003 exemption stands even in a
        # sharded module: plain reductions over local sets are fine.
        src = (
            "def count_big(keys):\n"
            "    pending = set(keys)\n"
            "    return sum(1 for k in pending if k > 2)\n"
        )
        assert lint_source(src, path="x/bgp/shardnet.py") == []

    def test_r009_suppression(self):
        src = (
            "def f(x):\n"
            "    return id(x)  # repro-lint: disable=R009\n"
        )
        assert lint_source(src, path="x/experiments/sharded_run.py") == []


class TestRuleNegatives:
    def test_clean_fixture_is_clean(self):
        assert lint_file(FIXTURES / "clean.py", config=SPEC_CONFIG) == []

    def test_seeded_random_instance_ok(self):
        src = "import random\nrng = random.Random(7)\nx = rng.random()\n"
        assert lint_source(src) == []

    def test_dict_iteration_ok(self):
        # Dicts are insertion-ordered — deterministic, not flagged.
        src = "d = {1: 'a'}\nfor k in d:\n    print(k)\n"
        assert lint_source(src) == []

    def test_order_insensitive_consumers_exempt(self):
        src = "s = {1, 2}\nok = any(x > 1 for x in s)\nn = sum(x for x in s)\n"
        assert lint_source(src) == []

    def test_set_comprehension_from_set_ok(self):
        assert lint_source("s = {1, 2}\nt = {x + 1 for x in s}\n") == []

    def test_sorted_set_ok(self):
        assert lint_source("s = {1, 2}\nfor x in sorted(s):\n    print(x)\n") == []

    def test_rebinding_clears_set_inference(self):
        src = "s = {1, 2}\ns = sorted(s)\nfor x in s:\n    print(x)\n"
        assert lint_source(src) == []


class TestSuppression:
    def test_suppressed_fixture_is_clean(self):
        assert lint_file(FIXTURES / "suppressed.py") == []

    def test_suppression_is_rule_specific(self):
        src = "import time\nt = time.time()  # repro-lint: disable=R001\n"
        assert rules_hit(lint_source(src)) == {"R002"}

    def test_disable_all(self):
        src = "import time\nt = time.time()  # repro-lint: disable=all\n"
        assert lint_source(src) == []


class TestInfrastructure:
    def test_syntax_error_reported_as_e999(self):
        violations = lint_source("def broken(:\n")
        assert len(violations) == 1
        assert violations[0].rule == "E999"

    def test_select_filters_rules(self):
        config = LintConfig(select=frozenset({"R001"}))
        violations = lint_file(FIXTURES / "r002_bad.py", config=config)
        assert violations == []

    def test_violation_format(self):
        v = Violation(path="a.py", line=3, col=4, rule="R001", message="boom")
        assert v.format() == "a.py:3:4: R001 boom"

    def test_iter_python_files_sorted_and_recursive(self):
        files = iter_python_files([FIXTURES])
        assert files == sorted(files)
        assert FIXTURES / "r001_bad.py" in files

    def test_lint_paths_aggregates(self):
        violations = lint_paths([FIXTURES / "r001_bad.py", FIXTURES / "r004_bad.py"])
        assert rules_hit(violations) == {"R001", "R004"}

    def test_rule_catalogue_complete(self):
        assert set(RULES) == {
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
            "R009", "R100", "R101", "R102",
        }


class TestReporters:
    def test_text_clean(self):
        assert format_text([]) == "clean: no violations"

    def test_text_summary_line(self):
        violations = lint_file(FIXTURES / "r004_bad.py")
        text = format_text(violations)
        assert "found 3 violation(s): R004=3" in text
        assert "r004_bad.py" in text

    def test_json_payload(self):
        violations = lint_file(FIXTURES / "r004_bad.py")
        payload = json.loads(format_json(violations))
        assert payload["count"] == 3
        assert payload["by_rule"] == {"R004": 3}
        assert all(v["rule"] == "R004" for v in payload["violations"])


class TestCli:
    def test_exit_zero_on_clean(self, capsys):
        assert lint_main([str(FIXTURES / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_exit_one_on_violations(self, capsys):
        assert lint_main([str(FIXTURES / "r001_bad.py")]) == 1
        assert "R001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, capsys):
        assert lint_main(["--select", "R999", str(FIXTURES / "clean.py")]) == 2

    def test_exit_two_on_missing_path(self, capsys):
        assert lint_main([str(FIXTURES / "does_not_exist.py")]) == 2

    def test_json_format(self, capsys):
        assert lint_main(["--format", "json", str(FIXTURES / "r004_bad.py")]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 3

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in RULES:
            assert rule in out

    def test_select_narrows(self, capsys):
        # r002_bad.py has no R001 violations, so selecting R001 passes.
        assert lint_main(["--select", "R001", str(FIXTURES / "r002_bad.py")]) == 0

    def test_module_execution(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(FIXTURES / "clean.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stdout
