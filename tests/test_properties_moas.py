"""Property-based tests of the MOAS-list scheme's core guarantees.

Hypothesis draws random topologies, origin sets and attacker placements;
the scheme's §4 guarantees must hold for every draw:

* **no false alarms**: a valid MOAS (all origins attach the same list)
  never raises an alarm, whatever the topology;
* **soundness of suppression**: with a ground-truth oracle, no genuine
  origin's route is ever suppressed;
* **alarm completeness**: any capable router that has *observed* both a
  genuine list and a conflicting one has raised an alarm;
* **detection dominance**: full deployment never increases the poisoned
  set compared with no deployment.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bgp.network import Network
from repro.core.alarms import AlarmLog
from repro.core.checker import MoasChecker
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.net.addresses import Prefix
from repro.topology import ASGraph

P = Prefix.parse("10.0.0.0/16")


@st.composite
def scenarios(draw):
    """Random connected graph + origin set + attacker set (disjoint)."""
    n = draw(st.integers(min_value=5, max_value=11))
    asns = [10 * (i + 1) for i in range(n)]
    edges = set()
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        edges.add((min(asns[i], asns[j]), max(asns[i], asns[j])))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            edges.add((min(asns[i], asns[j]), max(asns[i], asns[j])))
    graph = ASGraph.from_edges(sorted(edges))

    n_origins = draw(st.integers(min_value=1, max_value=2))
    origins = asns[:n_origins]
    candidates = asns[n_origins:]
    n_attackers = draw(st.integers(min_value=0, max_value=len(candidates)))
    attackers = candidates[:n_attackers]
    return graph, origins, attackers


def deploy_and_run(graph, origins, attackers, detect):
    registry = PrefixOriginRegistry()
    registry.register(P, origins)
    oracle = GroundTruthOracle(registry)
    log = AlarmLog()
    net = Network(graph)
    checkers = {}
    if detect:
        for asn in graph.asns():
            if asn in attackers:
                continue
            checker = MoasChecker(oracle=oracle, alarm_log=log)
            checker.attach(net.speaker(asn))
            checkers[asn] = checker
    net.establish_sessions()
    communities = moas_communities(origins) if len(origins) > 1 else ()
    for origin in origins:
        net.originate(origin, P, communities=communities)
    for attacker in attackers:
        net.speaker(attacker).originate(P)
    net.run_to_convergence()
    return net, log, checkers


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_valid_moas_never_alarms(draw):
    graph, origins, _ = draw
    net, log, _ = deploy_and_run(graph, origins, attackers=[], detect=True)
    assert len(log) == 0
    best = net.best_origins(P)
    assert all(v in set(origins) for v in best.values())


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_genuine_routes_never_suppressed(draw):
    graph, origins, attackers = draw
    net, log, checkers = deploy_and_run(graph, origins, attackers, detect=True)
    # No alarm ever points at a genuine origin.
    assert not (log.suspects() & set(origins))
    # Each origin's own route survives at the origin itself.
    for origin in origins:
        assert net.speaker(origin).best_origin(P) == origin


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_detection_never_worse_than_normal(draw):
    graph, origins, attackers = draw
    attacker_set = set(attackers)

    def poisoned(detect):
        net, _, _ = deploy_and_run(graph, origins, attackers, detect)
        return {
            asn
            for asn, best in net.best_origins(P).items()
            if asn not in attacker_set and best in attacker_set
        }

    assert poisoned(True) <= poisoned(False)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(scenarios())
def test_alarm_completeness(draw):
    """Every checker that observed two inconsistent lists has alarmed."""
    graph, origins, attackers = draw
    net, log, checkers = deploy_and_run(graph, origins, attackers, detect=True)
    alarmed = log.detectors()
    for asn, checker in checkers.items():
        observed = checker._observed.get(P, set())
        if len(observed) > 1:
            assert asn in alarmed
