"""Whole-program analyses: R100 taint, R101 snapshot completeness, R102 parity."""

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_file, lint_paths, lint_source
from repro.lint.driver import build_index
from repro.lint.snapshot import snapshot_coverage

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"


def rules_hit(violations):
    return {v.rule for v in violations}


def only(violations, rule):
    return [v for v in violations if v.rule == rule]


class TestR100Taint:
    def test_direct_source_into_sink(self):
        violations = only(lint_file(FIXTURES / "r100_bad.py"), "R100")
        messages = [v.message for v in violations]
        assert any(
            "schedule_at" in m and "time.time" in m for m in messages
        ), messages

    def test_taint_flows_through_call_chain(self):
        violations = only(lint_file(FIXTURES / "r100_bad.py"), "R100")
        chained = [
            v for v in violations if "indirect_stamp" in v.message
        ]
        assert chained, [v.message for v in violations]
        assert "wall_stamp" in chained[0].message  # provenance chain

    def test_snapshot_payload_is_a_sink(self):
        violations = only(lint_file(FIXTURES / "r100_bad.py"), "R100")
        assert any(
            "snapshot_state payload" in v.message and "uuid" in v.message
            for v in violations
        )

    def test_clean_fixture_has_no_r100(self):
        assert only(lint_file(FIXTURES / "r100_clean.py"), "R100") == []

    def test_source_suppression_kills_taint_at_birth(self):
        src = (
            "import time\n"
            "class S:\n"
            "    def go(self, sim):\n"
            "        t = time.perf_counter()  # repro-lint: disable=R002\n"
            "        sim.schedule_at(t, None)\n"
        )
        assert only(lint_source(src, "s.py"), "R100") == []

    def test_sink_suppression(self):
        src = (
            "import time\n"
            "class S:\n"
            "    def go(self, sim):\n"
            "        sim.schedule_at(time.time(), None)  # repro-lint: disable=R100\n"
        )
        violations = lint_source(src, "s.py")
        assert "R100" not in rules_hit(violations)
        assert "R002" in rules_hit(violations)  # the source is still flagged

    def test_cross_module_taint(self):
        violations = only(
            lint_paths(
                [FIXTURES / "r100_cross_helper.py", FIXTURES / "r100_cross_user.py"]
            ),
            "R100",
        )
        assert len(violations) == 1
        v = violations[0]
        assert v.path.endswith("r100_cross_user.py")
        assert "wall_stamp" in v.message and "time.time" in v.message

    def test_cross_module_needs_both_files(self):
        # Linting the user alone cannot resolve the helper: no finding.
        violations = only(lint_file(FIXTURES / "r100_cross_user.py"), "R100")
        assert violations == []

    def test_unordered_set_pick_is_a_source(self):
        src = (
            "class S:\n"
            "    def go(self, sim):\n"
            "        first = next(iter({3, 1, 2}))\n"
            "        sim.schedule_at(first, None)\n"
        )
        violations = only(lint_source(src, "s.py"), "R100")
        assert len(violations) == 1
        assert "unordered set" in violations[0].message


class TestR101Snapshot:
    def test_missing_capture_flagged(self):
        violations = only(lint_file(FIXTURES / "r101_bad.py"), "R101")
        assert any(
            "MissingCapture" in v.message and "'forgotten'" in v.message
            and "not captured" in v.message
            for v in violations
        )

    def test_stale_waiver_flagged(self):
        violations = only(lint_file(FIXTURES / "r101_bad.py"), "R101")
        assert any(
            "StaleWaiver" in v.message and "'ghost'" in v.message
            and "stale waiver" in v.message
            for v in violations
        )

    def test_one_sided_protocol_flagged(self):
        violations = only(lint_file(FIXTURES / "r101_bad.py"), "R101")
        assert any(
            "OneSided" in v.message and "without restore_state" in v.message
            for v in violations
        )

    def test_clean_fixture_passes(self):
        assert only(lint_file(FIXTURES / "r101_clean.py"), "R101") == []

    def test_line_suppression(self):
        src = (
            "class C:\n"
            "    def __init__(self):\n"
            "        self.x = 0  # repro-lint: disable=R101\n"
            "    def snapshot_state(self):\n"
            "        return {}\n"
            "    def restore_state(self, state):\n"
            "        pass\n"
        )
        assert only(lint_source(src, "c.py"), "R101") == []

    def test_deleting_a_field_from_real_checker_fails(self):
        """Acceptance: drop one field from MoasChecker.snapshot_state -> R101."""
        source = (SRC_ROOT / "core" / "checker.py").read_text(encoding="utf-8")
        line = '            "checks": self.checks,\n'
        assert line in source
        broken = source.replace(line, "")
        violations = only(
            lint_source(broken, str(SRC_ROOT / "core" / "checker.py")), "R101"
        )
        assert any(
            "'checks'" in v.message and "not captured" in v.message
            for v in violations
        ), [v.message for v in violations]

    def test_deleting_a_restore_line_fails(self):
        source = (SRC_ROOT / "stream" / "engine.py").read_text(encoding="utf-8")
        line = '        self.window = float(state["window"])\n'
        assert line in source
        broken = source.replace(line, "")
        violations = only(
            lint_source(broken, str(SRC_ROOT / "stream" / "engine.py")), "R101"
        )
        assert any(
            "'window'" in v.message and "not restored" in v.message
            for v in violations
        ), [v.message for v in violations]

    def test_coverage_enumeration(self):
        run = build_index([FIXTURES / "r101_clean.py"], LintConfig())
        coverage = snapshot_coverage(run.summaries)
        assert list(coverage) == ["r101_clean.FullyCovered"]
        report = coverage["r101_clean.FullyCovered"]
        assert report.complete
        assert report.waived == ("_registry",)
        assert set(report.captured) == {"count", "items"}


class TestR102Parity:
    TRIO = [
        FIXTURES / "r102" / "core" / "detection.py",
        FIXTURES / "r102" / "core" / "checker.py",
        FIXTURES / "r102" / "stream" / "engine.py",
    ]

    def violations(self):
        return only(lint_paths(self.TRIO), "R102")

    def test_diverging_constant_flagged_in_both_modules(self):
        hits = [
            v for v in self.violations()
            if "EVIDENCE_WINDOW" in v.message and "diverges across" in v.message
        ]
        assert {Path(v.path).name for v in hits} == {"checker.py", "engine.py"}

    def test_registry_duplicate_and_shadow(self):
        violations = self.violations()
        assert any(
            "duplicates the registry value" in v.message
            and v.path.endswith("core/checker.py")
            for v in violations
        )
        assert any(
            "shadows the registry value" in v.message
            and v.path.endswith("stream/engine.py")
            for v in violations
        )

    def test_diverging_parameter_default(self):
        hits = [
            v for v in self.violations()
            if "'window'" in v.message and "parameter default" in v.message
        ]
        assert {Path(v.path).name for v in hits} == {"checker.py", "engine.py"}

    def test_reimplemented_predicate(self):
        assert any(
            "lists_conflict" in v.message and "re-implements" in v.message
            for v in self.violations()
        )

    def test_matching_constant_without_registry_entry_is_fine(self):
        # SUPPRESS_LIMIT agrees across the group and is not a registry name.
        assert not any("SUPPRESS_LIMIT" in v.message for v in self.violations())

    def test_suppression(self):
        files = {
            "core/detection.py": "WINDOW = 1.0\n",
            "core/checker.py": "WINDOW = 2.0  # repro-lint: disable=R102\n",
            "stream/engine.py": "WINDOW = 2.0  # repro-lint: disable=R102\n",
        }
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            paths = []
            for rel, content in files.items():
                path = Path(tmp) / rel
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(content, encoding="utf-8")
                paths.append(path)
            assert only(lint_paths(paths), "R102") == []


class TestQueryPackageCoverage:
    """R006/R100 extended to the query subsystem's idioms."""

    def test_server_polling_sleep_trips_r006(self):
        violations = lint_file(FIXTURES / "r006_query_server_bad.py")
        assert rules_hit(violations) == {"R006"}
        assert len(violations) == 1

    def test_injected_sleeper_reload_loop_is_clean(self):
        src = (
            "class Reloader:\n"
            "    def watch(self, index, sleeper):\n"
            "        while True:\n"
            "            index.reload_if_changed()\n"
            "            sleeper(0.5)\n"
        )
        assert lint_source(src, "reloader.py") == []

    def test_wall_clock_into_segment_document_trips_r100(self):
        violations = only(lint_file(FIXTURES / "r100_query_bad.py"), "R100")
        assert any(
            "assemble_segment" in v.message and "time.time" in v.message
            for v in violations
        ), [v.message for v in violations]

    def test_chained_wall_clock_into_manifest_trips_r100(self):
        violations = only(lint_file(FIXTURES / "r100_query_bad.py"), "R100")
        assert any(
            "write_manifest" in v.message and "built_stamp" in v.message
            for v in violations
        ), [v.message for v in violations]

    def test_pure_segment_assembly_is_clean(self):
        src = (
            "from repro.query.segments import assemble_segment, write_manifest\n"
            "def cut(seq, start, end, events, rows):\n"
            "    return assemble_segment(seq, start, end, events, rows)\n"
            "def publish(directory, manifest):\n"
            "    write_manifest(directory, manifest)\n"
        )
        assert only(lint_source(src, "pure.py"), "R100") == []


class TestRealTreeIsProgramClean:
    def test_program_rules_clean_on_src(self):
        violations = [
            v
            for v in lint_paths([SRC_ROOT])
            if v.rule in {"R100", "R101", "R102"}
        ]
        assert violations == [], [v.format() for v in violations]


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
