"""Baseline keys, the warm-start LRU, the disk tier, and env resolution."""

import pickle

import pytest

from repro.bgp.speaker import SpeakerConfig
from repro.experiments.runner import (
    LINK_DELAY,
    AttackTiming,
    DeploymentKind,
    HijackScenario,
)
from repro.topology.generators import generate_paper_topology
from repro.warmstart import (
    SNAPSHOT_FORMAT,
    BaselineKey,
    BaselineSnapshot,
    WarmStartCache,
    compute_baseline_key,
    resolve_warm_start,
)
from repro.warmstart.cache import _SHARED_CACHES, WARMSTART_ENV_VAR


def make_key(**overrides):
    fields = dict(
        graph_digest="g" * 64,
        prefix="198.51.100.0/24",
        origins=(7,),
        deployment="full-moas-detection",
        capable_digest="c" * 64,
        checker_mode="detect-and-suppress",
        timing="post-convergence",
        mrai=0.0,
        hold_time=0.0,
        med_across_peers=False,
        prefer_oldest=True,
        link_delay=0.01,
        instrumented=False,
    )
    fields.update(overrides)
    return BaselineKey(**fields)


def make_snapshot(key, payload="x"):
    return BaselineSnapshot(
        key_digest=key.digest(),
        network={"sim": {"now": 1.0, "rng_streams": {}}, "marker": payload},
        checkers={},
        alarms=[],
    )


class TestBaselineKey:
    def test_digest_is_stable(self):
        assert make_key().digest() == make_key().digest()

    def test_every_field_is_load_bearing(self):
        base = make_key().digest()
        changed = [
            make_key(graph_digest="h" * 64),
            make_key(prefix="203.0.113.0/24"),
            make_key(origins=(7, 9)),
            make_key(deployment="normal-bgp"),
            make_key(capable_digest="d" * 64),
            make_key(checker_mode="detect-only"),
            make_key(timing="simultaneous"),
            make_key(mrai=30.0),
            make_key(hold_time=90.0),
            make_key(med_across_peers=True),
            make_key(prefer_oldest=False),
            make_key(link_delay=0.02),
            make_key(instrumented=True),
        ]
        digests = [key.digest() for key in changed]
        assert base not in digests
        assert len(set(digests)) == len(digests)

    def test_compute_from_scenario_pins_the_materialised_plan(self):
        graph = generate_paper_topology(25, seed=4)
        stubs = sorted(graph.stub_asns())
        scenario = HijackScenario(
            graph=graph,
            origins=[stubs[0]],
            attackers=[stubs[1]],
            deployment=DeploymentKind.PARTIAL,
            timing=AttackTiming.POST_CONVERGENCE,
            seed=3,
        )
        config = SpeakerConfig(mrai=0.0)
        key_a = compute_baseline_key(
            scenario, frozenset(stubs[:3]), config, LINK_DELAY, False
        )
        key_b = compute_baseline_key(
            scenario, frozenset(stubs[:3]), config, LINK_DELAY, False
        )
        key_c = compute_baseline_key(
            scenario, frozenset(stubs[:4]), config, LINK_DELAY, False
        )
        assert key_a == key_b
        assert key_a.digest() == key_b.digest()
        # A different capable draw is a different baseline.
        assert key_a.digest() != key_c.digest()
        # The attacker set plays no part: the baseline predates the attack.
        assert key_a.graph_digest == graph.content_digest()


class TestMemoryTier:
    def test_miss_then_put_then_hit(self):
        cache = WarmStartCache()
        key = make_key()
        assert cache.get(key) is None
        snapshot = make_snapshot(key)
        cache.put(key, snapshot)
        assert cache.get(key) is snapshot
        stats = cache.stats()
        assert stats["warmstart.hits"] == 1
        assert stats["warmstart.misses"] == 1
        assert stats["warmstart.puts"] == 1
        assert stats["warmstart.entries"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = WarmStartCache(capacity=2)
        keys = [make_key(origins=(n,)) for n in range(3)]
        cache.put(keys[0], make_snapshot(keys[0]))
        cache.put(keys[1], make_snapshot(keys[1]))
        assert cache.get(keys[0]) is not None  # refresh 0; 1 is now LRU
        cache.put(keys[2], make_snapshot(keys[2]))
        assert len(cache) == 2
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) is not None
        assert cache.stats()["warmstart.evictions"] == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            WarmStartCache(capacity=0)

    def test_uncacheable_counter(self):
        cache = WarmStartCache()
        cache.note_uncacheable()
        assert cache.stats()["warmstart.uncacheable"] == 1

    def test_restore_seconds_histogram(self):
        cache = WarmStartCache()
        cache.observe_restore_seconds(0.004)
        histogram = cache.stats()["warmstart.restore_seconds"]
        assert histogram["count"] == 1


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        key = make_key()
        writer = WarmStartCache(disk_dir=tmp_path)
        writer.put(key, make_snapshot(key, payload="persisted"))

        reader = WarmStartCache(disk_dir=tmp_path)
        found = reader.get(key)
        assert found is not None
        assert found.network["marker"] == "persisted"
        stats = reader.stats()
        assert stats["warmstart.hits"] == 1
        assert stats["warmstart.disk_hits"] == 1
        # A second get is served from memory.
        assert reader.get(key) is found
        assert reader.stats()["warmstart.disk_hits"] == 1

    def test_corrupted_file_is_a_miss(self, tmp_path):
        key = make_key()
        writer = WarmStartCache(disk_dir=tmp_path)
        writer.put(key, make_snapshot(key))
        (tmp_path / f"{key.digest()}.pkl").write_bytes(b"not a pickle")
        reader = WarmStartCache(disk_dir=tmp_path)
        assert reader.get(key) is None
        assert reader.stats()["warmstart.misses"] == 1

    def test_wrong_format_version_is_a_miss(self, tmp_path):
        key = make_key()
        payload = {
            "format": SNAPSHOT_FORMAT + 1,
            "key_digest": key.digest(),
            "snapshot": make_snapshot(key),
        }
        (tmp_path / f"{key.digest()}.pkl").write_bytes(pickle.dumps(payload))
        assert WarmStartCache(disk_dir=tmp_path).get(key) is None

    def test_key_digest_mismatch_is_a_miss(self, tmp_path):
        key = make_key()
        payload = {
            "format": SNAPSHOT_FORMAT,
            "key_digest": "f" * 64,
            "snapshot": make_snapshot(key),
        }
        (tmp_path / f"{key.digest()}.pkl").write_bytes(pickle.dumps(payload))
        assert WarmStartCache(disk_dir=tmp_path).get(key) is None

    def test_unwritable_disk_dir_is_best_effort(self, tmp_path):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        cache = WarmStartCache(disk_dir=blocker / "sub")
        key = make_key()
        cache.put(key, make_snapshot(key))  # must not raise
        assert cache.get(key) is not None  # memory tier still works


class TestResolution:
    @pytest.fixture(autouse=True)
    def clean_shared_caches(self):
        saved = dict(_SHARED_CACHES)
        _SHARED_CACHES.clear()
        yield
        _SHARED_CACHES.clear()
        _SHARED_CACHES.update(saved)

    def test_cache_instance_passes_through(self):
        cache = WarmStartCache()
        assert resolve_warm_start(cache) is cache

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no", "none"])
    def test_disabled_values(self, value, monkeypatch):
        monkeypatch.delenv(WARMSTART_ENV_VAR, raising=False)
        assert resolve_warm_start(value) is None

    def test_none_defers_to_environment(self, monkeypatch):
        monkeypatch.delenv(WARMSTART_ENV_VAR, raising=False)
        assert resolve_warm_start(None) is None
        monkeypatch.setenv(WARMSTART_ENV_VAR, "mem")
        cache = resolve_warm_start(None)
        assert isinstance(cache, WarmStartCache)
        assert cache.disk_dir is None

    @pytest.mark.parametrize("value", ["1", "on", "mem", "memory", "MEM"])
    def test_memory_values_share_one_cache(self, value):
        first = resolve_warm_start(value)
        assert isinstance(first, WarmStartCache)
        assert first.disk_dir is None
        assert resolve_warm_start("mem") is first

    def test_path_value_selects_disk_dir(self, tmp_path):
        cache = resolve_warm_start(str(tmp_path / "baselines"))
        assert isinstance(cache, WarmStartCache)
        assert cache.disk_dir == tmp_path / "baselines"
        # Same path resolves to the same process-wide cache.
        assert resolve_warm_start(str(tmp_path / "baselines")) is cache
