"""Behavioural tests for attacker strategies against the scheme."""

import pytest

from repro.attack.models import (
    Attacker,
    ExactListForgery,
    NaiveFalseOrigin,
    PathSpoofing,
    SupersetListForgery,
)
from repro.bgp.network import Network
from repro.core.alarms import AlarmLog
from repro.core.checker import MoasChecker
from repro.core.moas_list import moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
# Chain 1-2-3-4-5: origin at 1, attacker at 5; AS 4 is the contested node.
ORIGIN, ATTACKER, CONTESTED = 1, 5, 4


def run(chain_graph, strategy, detect):
    registry = PrefixOriginRegistry()
    registry.register(P, [ORIGIN])
    oracle = GroundTruthOracle(registry)
    log = AlarmLog()
    net = Network(chain_graph)
    if detect:
        for asn in chain_graph.asns():
            if asn != ATTACKER:
                MoasChecker(oracle=oracle, alarm_log=log).attach(net.speaker(asn))
    net.establish_sessions()
    net.originate(ORIGIN, P)
    net.run_to_convergence()
    Attacker(ATTACKER, strategy).launch(net, P, [ORIGIN])
    net.run_to_convergence()
    return net, log


class TestStrategiesWithoutDetection:
    @pytest.mark.parametrize(
        "strategy",
        [NaiveFalseOrigin(), SupersetListForgery(), ExactListForgery()],
    )
    def test_hijack_succeeds_at_closer_node(self, chain_graph, strategy):
        net, _ = run(chain_graph, strategy, detect=False)
        assert net.best_origins(P)[CONTESTED] == ATTACKER


class TestStrategiesWithDetection:
    @pytest.mark.parametrize(
        "strategy",
        [NaiveFalseOrigin(), SupersetListForgery(), ExactListForgery()],
    )
    def test_hijack_suppressed(self, chain_graph, strategy):
        net, log = run(chain_graph, strategy, detect=True)
        assert net.best_origins(P)[CONTESTED] == ORIGIN
        assert len(log) >= 1

    def test_path_spoofing_evades_detection(self, chain_graph):
        """§4.3: a manipulated AS path with a correct origin AS defeats the
        MOAS list.  The spoofed route claims origin 1, so no alarm fires
        and AS 4 forwards toward the attacker."""
        net, log = run(chain_graph, PathSpoofing(), detect=True)
        assert len(log) == 0
        best = net.speaker(CONTESTED).best_route(P)
        # The route's next hop is the attacker even though the AS path ends
        # at the genuine origin: traffic is hijacked invisibly.
        assert best.peer == ATTACKER
        assert best.origin_asn == ORIGIN


class TestStrategyMechanics:
    def test_superset_includes_attacker(self, chain_graph):
        net, _ = run(chain_graph, SupersetListForgery(), detect=False)
        route = net.speaker(CONTESTED).best_route(P)
        from repro.core.moas_list import extract_moas_list

        forged = extract_moas_list(route.attributes)
        assert ATTACKER in forged and ORIGIN in forged

    def test_exact_forgery_excludes_attacker(self, chain_graph):
        net, _ = run(chain_graph, ExactListForgery(), detect=False)
        route = net.speaker(CONTESTED).best_route(P)
        from repro.core.moas_list import extract_moas_list

        forged = extract_moas_list(route.attributes)
        assert ATTACKER not in forged

    def test_path_spoofing_requires_victims(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        with pytest.raises(ValueError):
            PathSpoofing().launch(net, ATTACKER, P, frozenset())

    def test_strategy_names(self):
        assert NaiveFalseOrigin().name == "naive-false-origin"
        assert SupersetListForgery().name == "superset-list-forgery"
        assert ExactListForgery().name == "exact-list-forgery"
        assert PathSpoofing().name == "path-spoofing"

    def test_attacker_dataclass(self, chain_graph):
        attacker = Attacker(ATTACKER, NaiveFalseOrigin())
        net = Network(chain_graph)
        net.establish_sessions()
        attacker.launch(net, P, [ORIGIN])
        net.run_to_convergence()
        assert net.speaker(ATTACKER).best_origin(P) == ATTACKER
