"""Property test: sharding is invisible for every random scenario.

Random small topologies, random origin/attacker placements, every
deployment kind and attack timing, shard counts 1–3: the sharded runner
must reproduce the serial engine bit-for-bit — same outcome fields, same
alarm log in the same order.  One-shard runs exercise the degenerate
partition (every cross-shard mechanism idle); three-shard runs on tiny
graphs force near-maximal edge cuts, so most UPDATEs cross a boundary
and the barrier/mailbox machinery carries essentially the whole run.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario_instrumented,
)
from repro.experiments.sharded_run import run_sharded
from repro.topology.generators import generate_paper_topology

scenarios = st.tuples(
    st.integers(min_value=12, max_value=34),  # size
    st.integers(min_value=0, max_value=7),  # topology seed
    st.integers(min_value=0, max_value=1000),  # origin index
    st.integers(min_value=0, max_value=1000),  # attacker index
    st.sampled_from(sorted(DeploymentKind, key=lambda d: d.value)),
    st.sampled_from(sorted(AttackTiming, key=lambda t: t.value)),
    st.integers(min_value=0, max_value=5),  # scenario seed
)


def _build(params) -> HijackScenario:
    size, topo_seed, origin_i, attacker_i, deployment, timing, seed = params
    graph = generate_paper_topology(size, seed=topo_seed)
    ases = sorted(graph.asns())
    origin = ases[origin_i % len(ases)]
    attacker = ases[attacker_i % len(ases)]
    if attacker == origin:
        attacker = ases[(attacker_i + 1) % len(ases)]
    return HijackScenario(
        graph=graph,
        origins=[origin],
        attackers=[attacker],
        deployment=deployment,
        timing=timing,
        seed=seed,
    )


@settings(max_examples=15, deadline=None)
@given(params=scenarios, shards=st.sampled_from([1, 2, 3]))
def test_sharded_equals_serial(params, shards):
    scenario = _build(params)
    serial = run_hijack_scenario_instrumented(scenario)
    sharded = run_sharded(scenario, n_shards=shards)
    assert sharded.outcome.masked_timing() == serial.outcome.masked_timing()
    assert list(sharded.alarms) == list(serial.alarms)
