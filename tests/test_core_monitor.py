"""Unit tests for the off-line monitoring process (§4.2)."""

from repro.bgp.attributes import AsPath
from repro.core.moas_list import MoasList
from repro.core.monitor import OfflineMonitor
from repro.core.origin_verification import PrefixOriginRegistry
from repro.net.addresses import Prefix
from repro.topology.routeviews import RouteViewsTable

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


def table_with(views):
    """views: list of (prefix, peer, path)."""
    table = RouteViewsTable(date="2001-04-06")
    for prefix, peer, path in views:
        table.add(prefix, peer, AsPath.from_asns(path))
    return table


class TestOfflineMonitor:
    def test_single_origin_consistent(self):
        monitor = OfflineMonitor()
        report = monitor.check_table(
            table_with([(P, 7, [7, 1]), (P, 8, [8, 9, 1])])
        )
        finding = report.findings[0]
        assert finding.consistent
        assert finding.origins_seen == frozenset({1})
        assert report.moas_prefixes == []

    def test_valid_moas_with_agreed_claims(self):
        claims = {
            (P, 1): MoasList([1, 2]),
            (P, 2): MoasList([1, 2]),
        }
        monitor = OfflineMonitor(claims=claims)
        report = monitor.check_table(
            table_with([(P, 7, [7, 1]), (P, 8, [8, 2])])
        )
        finding = report.findings[0]
        assert finding.consistent
        assert len(report.moas_prefixes) == 1

    def test_invalid_moas_detected_via_footnote3(self):
        # Origin 2 announces no list: implicit {2} conflicts with the
        # explicit {1, 2}... and a bare false origin 5 conflicts with both.
        claims = {(P, 1): MoasList([1, 2]), (P, 2): MoasList([1, 2])}
        monitor = OfflineMonitor(claims=claims)
        report = monitor.check_table(
            table_with([(P, 7, [7, 1]), (P, 8, [8, 2]), (P, 9, [9, 5])])
        )
        assert not report.findings[0].consistent
        assert len(report.conflicts) == 1

    def test_registry_flags_unauthorised(self):
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        monitor = OfflineMonitor(registry=registry)
        report = monitor.check_table(
            table_with([(P, 7, [7, 1]), (P, 8, [8, 5])])
        )
        assert report.findings[0].unauthorised_origins == frozenset({5})

    def test_registry_unknown_prefix_not_flagged(self):
        monitor = OfflineMonitor(registry=PrefixOriginRegistry())
        report = monitor.check_table(table_with([(Q, 7, [7, 5])]))
        assert report.findings[0].unauthorised_origins == frozenset()

    def test_series(self):
        monitor = OfflineMonitor()
        tables = [table_with([(P, 7, [7, 1])]) for _ in range(3)]
        reports = monitor.check_series(tables)
        assert len(reports) == 3

    def test_summary_text(self):
        monitor = OfflineMonitor()
        report = monitor.check_table(table_with([(P, 7, [7, 1]), (P, 8, [8, 2])]))
        text = report.summary()
        assert "1 prefixes" in text
        assert "1 MOAS" in text
