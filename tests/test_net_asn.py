"""Unit tests for AS number helpers."""

import pytest

from repro.net.asn import (
    PRIVATE_AS_MAX,
    PRIVATE_AS_MIN,
    AsnError,
    is_private_asn,
    strip_private_asns,
    validate_asn,
)


class TestValidateAsn:
    def test_valid_passthrough(self):
        assert validate_asn(1239) == 1239

    @pytest.mark.parametrize("asn", [0, -1, 65536, 10**9])
    def test_out_of_range_rejected(self, asn):
        with pytest.raises(AsnError):
            validate_asn(asn)

    def test_non_int_rejected(self):
        with pytest.raises(AsnError):
            validate_asn("1239")

    def test_bool_rejected(self):
        with pytest.raises(AsnError):
            validate_asn(True)

    def test_boundaries(self):
        assert validate_asn(1) == 1
        assert validate_asn(65535) == 65535


class TestPrivateRange:
    def test_private_range_bounds(self):
        assert is_private_asn(PRIVATE_AS_MIN)
        assert is_private_asn(PRIVATE_AS_MAX)
        assert not is_private_asn(PRIVATE_AS_MIN - 1)
        assert not is_private_asn(PRIVATE_AS_MAX + 1)

    def test_public_asn_not_private(self):
        assert not is_private_asn(1239)


class TestAsePathStripping:
    def test_strips_private(self):
        # The ASE scenario: customer peers with private AS 64512 which the
        # provider strips on egress.
        assert strip_private_asns([701, 64512]) == [701]

    def test_keeps_public(self):
        assert strip_private_asns([701, 1239, 7018]) == [701, 1239, 7018]

    def test_all_private_yields_empty(self):
        assert strip_private_asns([64512, 65000]) == []
