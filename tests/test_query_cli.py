"""CLI tests for ``repro query`` and the PR-wide diagnostics satellites."""

from __future__ import annotations

import json
import random

import pytest

from repro import __version__
from repro.cli import main
from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.feed import FeedWriter, snapshot_deltas

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)


@pytest.fixture(scope="module")
def streamed(tmp_path_factory):
    root = tmp_path_factory.mktemp("querycli")
    feed = root / "feed.jsonl"
    generator = TraceGenerator(TRACE_CONFIG, random.Random(7))
    with FeedWriter(feed) as writer:
        writer.write_all(snapshot_deltas(generator.snapshots()))
    alarms = root / "alarms.log"
    idx = root / "idx"
    rc = main([
        "stream", "run", str(feed), "--alarms", str(alarms),
        "--checkpoint", str(root / "cp.json"), "--index", str(idx),
    ])
    assert rc == 0
    return feed, alarms, idx


class TestDiagnostics:
    """Satellite: ``--version`` and exit-2 subcommand diagnostics."""

    def test_version_flag(self, capsys):
        # argparse's version action raises SystemExit(0); main() converts
        # it to a plain return code.
        assert main(["--version"]) == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_unknown_query_subcommand_exits_2(self, capsys):
        assert main(["query", "nonsense"]) == 2
        err = capsys.readouterr().err
        assert "invalid choice" in err and "nonsense" in err

    def test_missing_query_subcommand_exits_2(self, capsys):
        assert main(["query"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_top_level_command_exits_2(self):
        assert main(["no-such-command"]) == 2


class TestQueryCommands:
    def test_build_dump_scan_bit_identity(self, streamed, tmp_path, capsys):
        feed, alarms, idx = streamed
        offline = tmp_path / "offline"
        assert main([
            "query", "build", str(feed), "--alarms", str(alarms),
            "--out", str(offline), "--segment-days", "10",
        ]) == 0
        build_out = capsys.readouterr().out
        assert "index built" in build_out and "single mode" in build_out

        assert main(["query", "dump", str(offline)]) == 0
        dumped_offline = capsys.readouterr().out
        assert main(["query", "dump", str(idx)]) == 0
        dumped_live = capsys.readouterr().out
        assert main([
            "query", "scan", str(feed), "--alarms", str(alarms),
        ]) == 0
        scanned = capsys.readouterr().out
        assert dumped_offline == scanned
        assert dumped_live == scanned

    def test_stats_prefix_top(self, streamed, capsys):
        _, _, idx = streamed
        assert main(["query", "stats", str(idx)]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["alarms"]["total"] > 0
        assert main(["query", "top", str(idx), "--k", "1", "--by", "alarms"]) == 0
        top = json.loads(capsys.readouterr().out)
        assert len(top) == 1 and top[0]["alarms"] > 0
        target = top[0]["prefix"]
        assert main(["query", "prefix", str(idx), target]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["found"] is True
        assert report["alarms"]["total"] > 0

    def test_missing_index_fails_with_diagnostic(self, tmp_path, capsys):
        assert main(["query", "dump", str(tmp_path / "nowhere")]) == 1
        err = capsys.readouterr().err
        assert "query dump failed" in err and "repro query build" in err

    def test_bad_build_arguments_fail(self, streamed, tmp_path, capsys):
        feed, _, _ = streamed
        assert main([
            "query", "build", str(feed),
            "--alarms", str(tmp_path / "alarms.log"),
            "--out", str(tmp_path / "idx"),
            "--segment-days", "0",
        ]) == 1
        assert "query build failed" in capsys.readouterr().err

    def test_bad_top_key_fails_cleanly(self, streamed, capsys):
        _, _, idx = streamed
        # --by is validated by argparse choices: exit 2, not a traceback.
        assert main(["query", "top", str(idx), "--by", "bogus"]) == 2
