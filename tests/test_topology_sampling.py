"""Unit tests for the paper's topology sampling procedure."""

import random

import pytest

from repro.topology import ASGraph, ASRole
from repro.topology.generators import InternetTopologyConfig, generate_internet_like
from repro.topology.sampling import SamplingError, sample_topology


@pytest.fixture(scope="module")
def full_graph():
    config = InternetTopologyConfig()
    return generate_internet_like(config, random.Random(11))


class TestSampling:
    def test_sample_is_connected(self, full_graph):
        sample = sample_topology(full_graph, 0.05, random.Random(1))
        assert sample.is_connected()

    def test_no_weak_transit_survives(self, full_graph):
        """The paper's pruning invariant: every remaining transit AS has at
        least two peers."""
        sample = sample_topology(full_graph, 0.05, random.Random(2))
        for asn in sample.transit_asns():
            assert sample.degree(asn) >= 2

    def test_no_isolated_stub_survives(self, full_graph):
        sample = sample_topology(full_graph, 0.05, random.Random(3))
        for asn in sample.stub_asns():
            assert sample.degree(asn) >= 1

    def test_sampled_stubs_keep_their_transit_peers_links(self, full_graph):
        """Peering relations among selected ASes are completely preserved:
        every edge in the sample exists in the full graph."""
        sample = sample_topology(full_graph, 0.05, random.Random(4))
        for a, b in sample.edges():
            assert full_graph.has_link(a, b)

    def test_roles_preserved(self, full_graph):
        sample = sample_topology(full_graph, 0.05, random.Random(5))
        for asn in sample.asns():
            assert sample.role(asn) == full_graph.role(asn)

    def test_deterministic_given_rng(self, full_graph):
        a = sample_topology(full_graph, 0.05, random.Random(7))
        b = sample_topology(full_graph, 0.05, random.Random(7))
        assert a.asns() == b.asns()
        assert a.edges() == b.edges()

    def test_larger_fraction_larger_sample(self, full_graph):
        small = sample_topology(full_graph, 0.02, random.Random(8))
        large = sample_topology(full_graph, 0.30, random.Random(8))
        assert len(large) > len(small)

    def test_bad_fraction_rejected(self, full_graph):
        with pytest.raises(ValueError):
            sample_topology(full_graph, 0.0, random.Random(0))
        with pytest.raises(ValueError):
            sample_topology(full_graph, 1.5, random.Random(0))

    def test_no_stubs_rejected(self):
        g = ASGraph.from_edges([(1, 2), (2, 3), (1, 3)], transit=[1, 2, 3])
        with pytest.raises(SamplingError):
            sample_topology(g, 0.5, random.Random(0))

    def test_target_size_enforced(self, full_graph):
        sample = sample_topology(
            full_graph, 0.10, random.Random(9), target_size=30
        )
        assert len(sample) >= 30
