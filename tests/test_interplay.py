"""Cross-subsystem interplay tests.

Each test verifies a claim made in one module's documentation about how
it interacts with another subsystem.
"""

import pytest

from repro.bgp.aggregation import aggregate_routes
from repro.bgp.attributes import AsPath, PathAttributes
from repro.bgp.damping import DampingConfig, RouteFlapDamper
from repro.bgp.network import Network
from repro.bgp.rib import RibEntry
from repro.core.alarms import AlarmLog
from repro.core.checker import CheckerMode, MoasChecker
from repro.core.moas_list import extract_moas_list, moas_communities
from repro.core.origin_verification import GroundTruthOracle, PrefixOriginRegistry
from repro.measurement.moas_observer import MoasObserver
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")


class TestAggregationMeetsMoasObserver:
    def test_aggregated_route_counts_both_origins(self):
        """Footnote 1 end-to-end: aggregation creates an AS_SET origin, and
        the MOAS observer treats each member as an origin candidate."""
        entries = [
            RibEntry(
                Prefix.parse("10.0.0.0/17"),
                PathAttributes(as_path=AsPath.from_asns([100, 5])),
                peer=100,
            ),
            RibEntry(
                Prefix.parse("10.0.128.0/17"),
                PathAttributes(as_path=AsPath.from_asns([100, 6])),
                peer=100,
            ),
        ]
        result = aggregate_routes(entries, aggregator_asn=100, min_length=8)
        aggregate = result.aggregates[0]
        origins = aggregate.attributes.as_path.origin_asns()
        observer = MoasObserver()
        cases = observer.observe_snapshot(0, {aggregate.prefix: origins})
        assert len(cases) == 1
        assert cases[0].origins == frozenset({5, 6})

    def test_checker_is_lenient_on_aggregated_origins(self):
        """extract_moas_list returns None for a listless AS_SET origin —
        the checker accepts rather than guessing (no origin claim to
        verify)."""
        from repro.bgp.attributes import AsPathSegment, SegmentType

        attrs = PathAttributes(
            as_path=AsPath([AsPathSegment(SegmentType.AS_SET, [5, 6])])
        )
        assert extract_moas_list(attrs) is None
        checker = MoasChecker(mode=CheckerMode.ALARM_ONLY)
        from repro.bgp.speaker import BGPSpeaker
        from repro.eventsim import Simulator

        checker.attach(BGPSpeaker(Simulator(), 1))
        assert checker.validate(2, P, attrs) is True
        assert len(checker.alarms) == 0


class TestDampingMeetsMoas:
    def test_damping_penalises_churn_from_repeated_attack(self, chain_graph):
        """The damping docstring's claim: an attacker that keeps flapping
        its false origination accumulates penalty at the first checking
        neighbour and ends up suppressed outright — damping and MOAS
        checking compose."""
        fast = DampingConfig(
            penalty_per_flap=1000.0,
            suppress_threshold=1500.0,
            reuse_threshold=750.0,
            half_life=30.0,
            max_suppress_time=120.0,
        )
        registry = PrefixOriginRegistry()
        registry.register(P, [1])
        net = Network(chain_graph)
        # AS 4 runs damping; the attacker (5) flaps its bogus route.
        damper = RouteFlapDamper(fast)
        damper.attach(net.speaker(4))
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()

        for _ in range(3):
            net.speaker(5).originate(P)
            net.run_to_convergence()
            net.speaker(5).withdraw_origination(P)
            net.run_to_convergence()

        net.speaker(5).originate(P)
        net.run_to_convergence()
        assert damper.is_suppressed(5, P)
        # With the flapper damped, AS 4 holds the genuine route even
        # though the bogus path is shorter.
        assert net.speaker(4).best_origin(P) == 1

    def test_damping_does_not_penalise_the_stable_victim(self, chain_graph):
        """The genuine origin announces once and never flaps: its penalty
        at the damping router stays zero throughout the attack churn."""
        fast = DampingConfig(
            penalty_per_flap=1000.0,
            suppress_threshold=1500.0,
            reuse_threshold=750.0,
            half_life=30.0,
            max_suppress_time=120.0,
        )
        net = Network(chain_graph)
        damper = RouteFlapDamper(fast)
        damper.attach(net.speaker(4))
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        for _ in range(3):
            net.speaker(5).originate(P)
            net.run_to_convergence()
            net.speaker(5).withdraw_origination(P)
            net.run_to_convergence()
        assert damper.penalty(3, P) == 0.0  # the genuine route's peer side


class TestCheckerMeetsWellKnownCommunities:
    def test_no_export_moas_announcement_stays_local_but_consistent(self):
        """A MOAS list composes with NO_EXPORT: the scoped announcement
        reaches only direct peers, carries its list, and raises no alarm
        there.  Topology: origins 1 and 2 share provider 3; AS 4 is a
        second hop behind it."""
        from repro.bgp.attributes import Community
        from repro.topology import ASGraph

        graph = ASGraph.from_edges([(1, 3), (2, 3), (3, 4)], transit=[3])
        registry = PrefixOriginRegistry()
        registry.register(P, [1, 2])
        log = AlarmLog()
        net = Network(graph)
        for asn in (3, 4):
            MoasChecker(
                oracle=GroundTruthOracle(registry), alarm_log=log
            ).attach(net.speaker(asn))
        net.establish_sessions()
        communities = set(moas_communities([1, 2]))
        communities.add(Community.from_u32(Community.NO_EXPORT))
        net.originate(1, P, communities=communities)
        net.originate(2, P, communities=communities)
        net.run_to_convergence()
        # The direct peer holds a route and saw both consistent lists.
        assert net.speaker(3).best_origin(P) in (1, 2)
        assert len(log) == 0
        # The second hop never saw it (NO_EXPORT).
        assert net.speaker(4).best_route(P) is None
