"""Unit tests for the BGP session FSM."""

import pytest

from repro.bgp.errors import SessionError
from repro.bgp.session import SessionState
from repro.bgp.speaker import BGPSpeaker, SpeakerConfig
from repro.net.link import Link


def pair(sim, hold_time=0.0):
    a = BGPSpeaker(sim, 1, config=SpeakerConfig(hold_time=hold_time))
    b = BGPSpeaker(sim, 2, config=SpeakerConfig(hold_time=hold_time))
    link = Link(sim, 1, 2)
    sa = a.add_peer(2, link)
    sb = b.add_peer(1, link)
    return a, b, sa, sb, link


class TestEstablishment:
    def test_active_open_establishes_both_sides(self, sim):
        a, b, sa, sb, _ = pair(sim)
        sa.start()
        sim.run()
        assert sa.established and sb.established

    def test_simultaneous_open(self, sim):
        a, b, sa, sb, _ = pair(sim)
        sa.start()
        sb.start()
        sim.run()
        assert sa.established and sb.established

    def test_start_twice_rejected(self, sim):
        _, _, sa, _, _ = pair(sim)
        sa.start()
        with pytest.raises(SessionError):
            sa.start()

    def test_as_mismatch_torn_down(self, sim):
        from repro.bgp.session import Session

        a = BGPSpeaker(sim, 1)
        b = BGPSpeaker(sim, 2)
        link = Link(sim, 1, 2)
        sa = a.add_peer(2, link)
        # b believes the remote is AS 999, so a's OPEN is rejected.
        sb = Session(sim, b, 999, link)
        link.attach(2, lambda sender, msg: sb.handle_message(msg))
        sa.start()
        sim.run()
        assert not sa.established
        assert not sb.established

    def test_trace_records_establishment(self, sim):
        _, _, sa, _, _ = pair(sim)
        sa.start()
        sim.run()
        assert sim.trace.count("session.established") == 2


class TestTeardown:
    def test_close_notifies_peer(self, sim):
        a, b, sa, sb, _ = pair(sim)
        sa.start()
        sim.run()
        sa.close("maintenance")
        sim.run()
        assert sa.state is SessionState.IDLE
        assert sb.state is SessionState.IDLE

    def test_close_when_idle_is_noop(self, sim):
        _, _, sa, _, _ = pair(sim)
        sa.close()
        assert sa.state is SessionState.IDLE

    def test_peer_routes_flushed_on_close(self, sim, prefix):
        a, b, sa, sb, _ = pair(sim)
        sa.start()
        sim.run()
        a.originate(prefix)
        sim.run()
        assert b.best_route(prefix) is not None
        sa.close()
        sim.run()
        assert b.best_route(prefix) is None


class TestKeepaliveAndHold:
    def test_keepalives_maintain_session(self, sim):
        a, b, sa, sb, _ = pair(sim, hold_time=3.0)
        sa.start()
        sim.run(until=30.0)
        assert sa.established and sb.established

    def test_hold_timer_expires_when_link_dies_silently(self, sim):
        a, b, sa, sb, link = pair(sim, hold_time=3.0)
        sa.start()
        sim.run(until=1.0)
        assert sa.established
        link.fail()
        sim.run(until=10.0)
        assert sa.state is SessionState.IDLE
        assert sb.state is SessionState.IDLE

    def test_session_recovers_after_link_restore(self, sim, prefix):
        a, b, sa, sb, link = pair(sim, hold_time=3.0)
        sa.start()
        sim.run(until=1.0)
        a.originate(prefix)
        sim.run(until=2.0)
        link.fail()
        sim.run(until=10.0)
        assert b.best_route(prefix) is None
        link.restore()
        sa.start()
        sim.run(until=20.0)
        assert sa.established
        assert b.best_route(prefix) is not None
