"""Unit and property tests for the BGP decision process."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.decision import DecisionProcess, RouteComparison
from repro.bgp.rib import RibEntry
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/8")


def route(
    peer=100,
    path=(100,),
    local_pref=100,
    origin=Origin.IGP,
    med=0,
    installed_at=0.0,
    seq=0,
):
    attrs = PathAttributes(
        origin=origin,
        as_path=AsPath.from_asns(list(path)),
        med=med,
        local_pref=local_pref,
    )
    return RibEntry(P, attrs, peer=peer, installed_at=installed_at, installed_seq=seq)


class TestLadder:
    def setup_method(self):
        self.dp = DecisionProcess()

    def test_local_pref_dominates_path_length(self):
        short = route(path=(1,), local_pref=50)
        long_but_preferred = route(peer=200, path=(200, 2, 3), local_pref=200)
        assert self.dp.select_best([short, long_but_preferred]) is long_but_preferred

    def test_shorter_path_wins(self):
        short = route(peer=100, path=(100, 9))
        long = route(peer=200, path=(200, 5, 9))
        assert self.dp.select_best([long, short]) is short

    def test_as_set_counts_once(self):
        from repro.bgp.attributes import AsPathSegment, SegmentType

        set_path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [100]),
                AsPathSegment(SegmentType.AS_SET, [1, 2, 3]),
            ]
        )
        aggregated = RibEntry(
            P, PathAttributes(as_path=set_path), peer=100
        )
        plain = route(peer=200, path=(200, 5, 9))  # length 3
        assert self.dp.select_best([plain, aggregated]) is aggregated

    def test_origin_code_breaks_path_tie(self):
        igp = route(peer=100, path=(100,), origin=Origin.IGP)
        egp = route(peer=200, path=(200,), origin=Origin.EGP)
        assert self.dp.select_best([egp, igp]) is igp

    def test_med_compared_same_neighbor_only(self):
        # Same neighbouring AS (first_asn 100): MED applies.
        low = route(peer=100, path=(100, 9), med=5)
        high = route(peer=200, path=(100, 9), med=10)
        assert self.dp.compare(low, high) is RouteComparison.LEFT_BETTER

    def test_med_ignored_across_neighbors_by_default(self):
        a = route(peer=100, path=(100, 9), med=50, installed_at=0.0)
        b = route(peer=200, path=(200, 9), med=5, installed_at=0.0)
        # Falls through MED (different neighbours) to peer-ASN tie-break.
        assert self.dp.select_best([a, b]) is a

    def test_med_across_peers_mode(self):
        dp = DecisionProcess(med_across_peers=True)
        a = route(peer=100, path=(100, 9), med=50)
        b = route(peer=200, path=(200, 9), med=5)
        assert dp.select_best([a, b]) is b

    def test_local_route_beats_learned(self):
        local = RibEntry(P, PathAttributes(), peer=None)
        learned = route(path=(100,))
        # Give the learned route an empty path to force the tie down to
        # the local-vs-learned rung.
        learned = RibEntry(P, PathAttributes(), peer=100)
        assert self.dp.select_best([learned, local]) is local

    def test_oldest_route_wins_tie(self):
        old = route(peer=200, path=(200, 9), installed_at=1.0)
        new = route(peer=100, path=(100, 9), installed_at=2.0)
        assert self.dp.select_best([new, old]) is old

    def test_arrival_sequence_breaks_same_instant(self):
        first = route(peer=200, path=(200, 9), installed_at=1.0, seq=1)
        second = route(peer=100, path=(100, 9), installed_at=1.0, seq=2)
        assert self.dp.select_best([second, first]) is first

    def test_prefer_oldest_disabled_falls_to_peer_asn(self):
        dp = DecisionProcess(prefer_oldest=False)
        old = route(peer=200, path=(200, 9), installed_at=1.0)
        new = route(peer=100, path=(100, 9), installed_at=2.0)
        assert dp.select_best([new, old]) is new

    def test_peer_asn_final_tiebreak(self):
        a = route(peer=100, path=(100, 9))
        b = route(peer=200, path=(200, 9))
        assert self.dp.select_best([b, a]) is a

    def test_identical_routes_equal(self):
        a = route()
        b = route()
        assert self.dp.compare(a, b) is RouteComparison.EQUAL


class TestSelection:
    def test_empty_candidates(self):
        assert DecisionProcess().select_best([]) is None

    def test_single_candidate(self):
        r = route()
        assert DecisionProcess().select_best([r]) is r

    def test_cross_prefix_comparison_rejected(self):
        other = RibEntry(
            Prefix.parse("11.0.0.0/8"), PathAttributes(), peer=100
        )
        with pytest.raises(ValueError):
            DecisionProcess().compare(route(), other)

    def test_rank_best_first(self):
        dp = DecisionProcess()
        best = route(peer=100, path=(100,))
        mid = route(peer=200, path=(200, 1))
        worst = route(peer=300, path=(300, 1, 2))
        assert dp.rank([worst, best, mid]) == [best, mid, worst]

    @given(st.permutations(list(range(5))))
    def test_selection_order_independent(self, order):
        candidates = [
            route(peer=100 + i, path=tuple([100 + i] + [9] * i), installed_at=float(i))
            for i in range(5)
        ]
        shuffled = [candidates[i] for i in order]
        assert DecisionProcess().select_best(shuffled) is candidates[0]
