"""Unit tests for origin/attacker placement (§5.1)."""

import random

import pytest

from repro.attack.placement import place_attackers, place_origins
from repro.topology import ASGraph


@pytest.fixture
def graph():
    return ASGraph.from_edges(
        [(1, 10), (2, 10), (3, 11), (4, 11), (10, 11)], transit=[10, 11]
    )


class TestPlaceOrigins:
    def test_origins_are_stubs(self, graph):
        origins = place_origins(graph, 2, random.Random(0))
        assert all(asn in graph.stub_asns() for asn in origins)
        assert len(origins) == 2

    def test_origins_distinct(self, graph):
        for seed in range(10):
            origins = place_origins(graph, 2, random.Random(seed))
            assert len(set(origins)) == 2

    def test_too_many_rejected(self, graph):
        with pytest.raises(ValueError):
            place_origins(graph, 5, random.Random(0))

    def test_zero_rejected(self, graph):
        with pytest.raises(ValueError):
            place_origins(graph, 0, random.Random(0))

    def test_deterministic(self, graph):
        assert place_origins(graph, 2, random.Random(3)) == place_origins(
            graph, 2, random.Random(3)
        )


class TestPlaceAttackers:
    def test_attackers_from_all_ases(self, graph):
        """§5.1: attackers are chosen from all ASes, transit included."""
        seen = set()
        for seed in range(30):
            seen.update(place_attackers(graph, 2, random.Random(seed)))
        assert 10 in seen or 11 in seen  # transit ASes are eligible

    def test_exclusion_respected(self, graph):
        for seed in range(10):
            attackers = place_attackers(
                graph, 3, random.Random(seed), exclude=[1, 2]
            )
            assert not set(attackers) & {1, 2}

    def test_zero_attackers_allowed(self, graph):
        assert place_attackers(graph, 0, random.Random(0)) == []

    def test_negative_rejected(self, graph):
        with pytest.raises(ValueError):
            place_attackers(graph, -1, random.Random(0))

    def test_too_many_rejected(self, graph):
        with pytest.raises(ValueError):
            place_attackers(graph, 6, random.Random(0), exclude=[1])
