"""CLI behaviour: crash paths, --changed, baselines, SARIF, cache flags."""

import json
import subprocess
from pathlib import Path

import pytest

from repro.lint.cli import main as lint_main

BAD = "import random\n\ndef roll():\n    return random.random()\n"
CLEAN = "def roll():\n    return 4\n"


def run_cli(args, capsys):
    code = lint_main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def cache_args(tmp_path):
    return ["--cache-dir", str(tmp_path / "lint-cache")]


class TestCrashPaths:
    def test_syntax_error_exits_2_with_diagnostic(self, tmp_path, capsys):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        code, _, err = run_cli([str(target), *cache_args(tmp_path)], capsys)
        assert code == 2
        assert "E999" in err and "syntax error" in err
        assert "Traceback" not in err

    def test_non_utf8_exits_2_with_diagnostic(self, tmp_path, capsys):
        target = tmp_path / "latin.py"
        target.write_bytes(b"# caf\xe9\nx = 1\n")
        code, _, err = run_cli([str(target), *cache_args(tmp_path)], capsys)
        assert code == 2
        assert "E902" in err and "UTF-8" in err
        assert "Traceback" not in err

    def test_missing_file_exits_2_with_diagnostic(self, tmp_path, capsys):
        target = tmp_path / "ghost.py"
        target.symlink_to(tmp_path / "does-not-exist.py")
        code, _, err = run_cli([str(target), *cache_args(tmp_path)], capsys)
        assert code == 2
        assert "no such path" in err

    def test_unreadable_file_surfaces_as_e902(self, tmp_path):
        # The CLI's exists() pre-check stops dangling paths early; a file
        # that vanishes (or is unreadable) mid-run reaches the driver's
        # read and must come back as an E902 error, not an exception.
        from repro.lint.driver import run_lint

        target = tmp_path / "ghost.py"
        target.symlink_to(tmp_path / "does-not-exist.py")
        run = run_lint([target])
        assert len(run.errors) == 1
        assert run.errors[0].code == "E902"
        assert "cannot read file" in run.errors[0].message

    def test_good_files_still_reported_alongside_errors(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(BAD, encoding="utf-8")
        (tmp_path / "broken.py").write_text("def broken(:\n", encoding="utf-8")
        code, out, err = run_cli([str(tmp_path), *cache_args(tmp_path)], capsys)
        assert code == 2  # fatal file errors dominate the exit code
        assert "R001" in out  # but the analysable file is still linted
        assert "E999" in err

    def test_cli_subprocess_never_tracebacks_on_bad_file(self, tmp_path):
        import os
        import sys

        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n", encoding="utf-8")
        repo_src = Path(__file__).parent.parent / "src"
        env = dict(os.environ, PYTHONPATH=str(repo_src))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(target), "--no-cache"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr


class TestChanged:
    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        subprocess.run(["git", "config", "user.email", "t@t"], check=True)
        subprocess.run(["git", "config", "user.name", "t"], check=True)
        src = tmp_path / "pkg"
        src.mkdir()
        (src / "committed.py").write_text(BAD, encoding="utf-8")
        subprocess.run(["git", "add", "."], check=True)
        subprocess.run(["git", "commit", "-qm", "seed"], check=True)
        return tmp_path

    def test_changed_scopes_to_dirty_files(self, git_repo, capsys, tmp_path):
        # committed.py is clean in git terms despite its R001: not linted.
        (git_repo / "pkg" / "fresh.py").write_text(
            "import time\nt = time.time()\n", encoding="utf-8"
        )
        code, out, _ = run_cli(
            ["--changed", "pkg", *cache_args(tmp_path)], capsys
        )
        assert code == 1
        assert "fresh.py" in out and "R002" in out
        assert "committed.py" not in out

    def test_changed_with_clean_tree_exits_0(self, git_repo, capsys, tmp_path):
        code, out, _ = run_cli(
            ["--changed", "pkg", *cache_args(tmp_path)], capsys
        )
        assert code == 0
        assert "no changed files" in out

    def test_changed_outside_git_exits_2(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "x.py").write_text(CLEAN, encoding="utf-8")
        code, _, err = run_cli(
            ["--changed", str(tmp_path), *cache_args(tmp_path)], capsys
        )
        assert code == 2
        assert "git" in err


class TestBaseline:
    def test_write_then_apply(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD, encoding="utf-8")
        baseline = tmp_path / "baseline.json"

        code, _, err = run_cli(
            [str(target), "--write-baseline", str(baseline), *cache_args(tmp_path)],
            capsys,
        )
        assert code == 0
        assert "wrote baseline with 1 violation(s)" in err

        code, out, _ = run_cli(
            [str(target), "--baseline", str(baseline), *cache_args(tmp_path)], capsys
        )
        assert code == 0
        assert "clean" in out

    def test_new_violation_escapes_baseline(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        run_cli(
            [str(target), "--write-baseline", str(baseline), *cache_args(tmp_path)],
            capsys,
        )
        target.write_text(BAD + "import time\nt = time.time()\n", encoding="utf-8")
        code, out, _ = run_cli(
            [str(target), "--baseline", str(baseline), *cache_args(tmp_path)], capsys
        )
        assert code == 1
        assert "R001" not in out  # baselined

    def test_malformed_baseline_exits_2(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        baseline = tmp_path / "baseline.json"
        baseline.write_text("{not json", encoding="utf-8")
        code, _, err = run_cli(
            [str(target), "--baseline", str(baseline), *cache_args(tmp_path)], capsys
        )
        assert code == 2
        assert "baseline" in err

    def test_missing_baseline_exits_2(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        code, _, err = run_cli(
            [str(target), "--baseline", str(tmp_path / "nope.json"),
             *cache_args(tmp_path)],
            capsys,
        )
        assert code == 2


class TestSarif:
    def test_sarif_document_shape(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(BAD, encoding="utf-8")
        code, out, _ = run_cli(
            [str(target), "--format", "sarif", *cache_args(tmp_path)], capsys
        )
        assert code == 1
        log = json.loads(out)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {"R001", "R100", "R101", "R102"} <= rule_ids
        result = run["results"][0]
        assert result["ruleId"] == "R001"
        assert result["level"] == "warning"
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] >= 1 and region["startColumn"] >= 1

    def test_sarif_clean_run_is_valid(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        code, out, _ = run_cli(
            [str(target), "--format", "sarif", *cache_args(tmp_path)], capsys
        )
        assert code == 0
        assert json.loads(out)["runs"][0]["results"] == []


class TestStatsAndCache:
    def test_stats_reports_cache_traffic(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        args = [str(target), "--stats", *cache_args(tmp_path)]
        _, _, err = run_cli(args, capsys)
        assert "1 file(s)" in err and "0 cache hit(s)" in err
        _, _, err = run_cli(args, capsys)
        assert "1 cache hit(s)" in err

    def test_no_cache_skips_the_cache(self, tmp_path, capsys):
        target = tmp_path / "mod.py"
        target.write_text(CLEAN, encoding="utf-8")
        run_cli([str(target), *cache_args(tmp_path)], capsys)
        _, _, err = run_cli(
            [str(target), "--no-cache", "--stats", *cache_args(tmp_path)], capsys
        )
        assert "0 cache hit(s)" in err


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
