"""Crash-injection tests for the query index.

The matrix kills the writer at every index durability fault point —
before the segment fsync, before its atomic rename, before the directory
sync, and the same three for the manifest — and proves the invariant the
subsystem promises: after any crash the index directory either loads as a
consistent (possibly stale) index or refuses with :class:`QueryError`.
Never a torn manifest, and a resumed run always converges to answers
bit-identical to a brute-force scan.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.query import QueryIndex, answers_doc, canonical_json, scan_state
from repro.query.segments import MANIFEST_NAME, load_manifest
from repro.query.track import QueryError
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.service import FAULT_EXIT_CODE, StreamService

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)

#: Every index fault point, each hit on the first boundary and again on a
#: later one so both the empty-index and the extend-manifest paths crash.
QUERY_FAULT_MATRIX = [
    (point, nth)
    for point in (
        "segment-pre-fsync",
        "segment-pre-replace",
        "segment-pre-dirsync",
        "manifest-pre-fsync",
        "manifest-pre-replace",
        "manifest-pre-dirsync",
    )
    for nth in (1, 4)
]


class InjectedCrash(BaseException):
    """Deliberately not an Exception: nothing may swallow a crash."""


def raising_hook(point, nth=1):
    remaining = [nth]

    def hook(name):
        if name != point:
            return
        remaining[0] -= 1
        if remaining[0] <= 0:
            raise InjectedCrash(point)

    return hook


def write_trace_feed(path, seed=7):
    generator = TraceGenerator(TRACE_CONFIG, random.Random(seed))
    with FeedWriter(path) as writer:
        return writer.write_all(snapshot_deltas(generator.snapshots()))


SERVICE_KWARGS = dict(checkpoint_every=120, full_every=4, async_io=False)


@pytest.fixture(scope="module")
def trace_feed(tmp_path_factory):
    root = tmp_path_factory.mktemp("queryfaultfeed")
    feed = root / "feed.jsonl"
    write_trace_feed(feed)
    alarms = root / "alarms_full.jsonl"
    StreamService(feed, alarms, root / "cp_full.json", **SERVICE_KWARGS).run()
    expected = canonical_json(answers_doc(scan_state([feed], alarms)))
    return feed, expected


def assert_loads_or_refuses(index_dir):
    """The rebuild-or-refuse invariant: a crashed index directory is
    either a consistent older index or an explicit refusal."""
    try:
        index = QueryIndex(index_dir)
    except QueryError:
        return None
    return index


class TestIndexFaultMatrix:
    @pytest.mark.parametrize("point,nth", QUERY_FAULT_MATRIX)
    def test_crash_then_resume_is_bit_identical(
        self, tmp_path, trace_feed, point, nth
    ):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                index=idx, **SERVICE_KWARGS,
            ).run()
        # Between the crash and the resume the directory must already be
        # servable-or-refusing — never torn.
        interrupted = assert_loads_or_refuses(idx)
        if interrupted is not None:
            assert interrupted.records <= 5288
        summary = StreamService(
            feed, alarms, cp, index=idx, **SERVICE_KWARGS
        ).run(resume=True)
        assert summary.eof is True
        assert canonical_json(answers_doc(QueryIndex(idx).state)) == expected
        assert list(idx.glob("*.tmp")) == []
        manifest = load_manifest(idx)
        referenced = {entry["name"] for entry in manifest["segments"]}
        assert {p.name for p in idx.glob("seg-*")} == referenced

    @pytest.mark.parametrize(
        "point,nth", [("segment-pre-replace", 2), ("manifest-pre-replace", 2)]
    )
    def test_double_crash_then_resume(self, tmp_path, trace_feed, point, nth):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                index=idx, **SERVICE_KWARGS,
            ).run()
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                index=idx, **SERVICE_KWARGS,
            ).run(resume=True)
        StreamService(feed, alarms, cp, index=idx, **SERVICE_KWARGS).run(
            resume=True
        )
        assert canonical_json(answers_doc(QueryIndex(idx).state)) == expected


class TestRefusalPaths:
    def test_torn_manifest_refuses_everywhere(self, tmp_path, trace_feed):
        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        StreamService(
            feed, alarms, cp, max_records=2000, index=idx, **SERVICE_KWARGS
        ).run()
        manifest_path = idx / MANIFEST_NAME
        torn = manifest_path.read_bytes()[:-40]
        manifest_path.write_bytes(torn)
        segments_before = sorted(p.name for p in idx.glob("seg-*"))
        with pytest.raises(QueryError, match="refusing"):
            QueryIndex(idx)
        with pytest.raises(QueryError, match="refusing"):
            StreamService(
                feed, alarms, cp, index=idx, **SERVICE_KWARGS
            ).run(resume=True)
        # The refusal must not have modified the directory.
        assert manifest_path.read_bytes() == torn
        assert sorted(p.name for p in idx.glob("seg-*")) == segments_before

    def test_foreign_manifest_refuses_resume(self, tmp_path, trace_feed):
        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        idx.mkdir()
        (idx / MANIFEST_NAME).write_text('{"format": "something-else"}\n')
        StreamService(
            feed, alarms, cp, max_records=2000, **SERVICE_KWARGS
        ).run()
        with pytest.raises(QueryError, match="not a repro-query-manifest"):
            StreamService(
                feed, alarms, cp, index=idx, **SERVICE_KWARGS
            ).run(resume=True)

    def test_lying_manifest_coordinates_refuse_resume(
        self, tmp_path, trace_feed
    ):
        import json

        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        StreamService(
            feed, alarms, cp, max_records=1000, index=idx, **SERVICE_KWARGS
        ).run()
        StreamService(
            feed, alarms, cp, max_records=1000, **SERVICE_KWARGS
        ).run(resume=True)
        # Claim two fewer records at the same byte position: the catch-up
        # replay count can no longer reconcile with the checkpoint.
        manifest_path = idx / MANIFEST_NAME
        doc = json.loads(manifest_path.read_text())
        doc["end"]["records"] -= 2
        manifest_path.write_text(json.dumps(doc) + "\n")
        with pytest.raises(QueryError, match="does not belong"):
            StreamService(
                feed, alarms, cp, index=idx, **SERVICE_KWARGS
            ).run(resume=True)


class TestSubprocessCrash:
    """``os._exit`` mid-index-write in a real CLI process, then resume."""

    SUBPROCESS_POINTS = [("segment-pre-replace", 2), ("manifest-pre-replace", 2)]

    def run_cli(self, feed, alarms, cp, idx, *extra, env_fault=None):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_STREAM_FAULT", None)
        if env_fault is not None:
            env["REPRO_STREAM_FAULT"] = env_fault
        cmd = [
            sys.executable, "-m", "repro", "stream", "run", str(feed),
            "--alarms", str(alarms), "--checkpoint", str(cp),
            "--checkpoint-every", "120", "--full-every", "4",
            "--index", str(idx), *extra,
        ]
        return subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=120
        )

    @pytest.mark.parametrize("point,nth", SUBPROCESS_POINTS)
    def test_hard_exit_then_resume(self, tmp_path, trace_feed, point, nth):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        idx = tmp_path / "idx"
        crashed = self.run_cli(
            feed, alarms, cp, idx, env_fault=f"{point}:{nth}"
        )
        assert crashed.returncode == FAULT_EXIT_CODE, crashed.stderr
        done = self.run_cli(feed, alarms, cp, idx, "--resume")
        assert done.returncode == 0, done.stderr
        assert canonical_json(answers_doc(QueryIndex(idx).state)) == expected
        assert list(idx.glob("*.tmp")) == []
