"""Tests for versioned checkpoint files and atomic persistence."""

from __future__ import annotations

import json

import pytest

from repro.stream.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)


def make(offset=10, byte_offset=1234, alarm_lines=2, engine_state=None):
    return Checkpoint(
        offset=offset,
        byte_offset=byte_offset,
        alarm_lines=alarm_lines,
        engine_state=engine_state if engine_state is not None else {"k": [1, 2]},
    )


class TestCheckpointValue:
    def test_negative_fields_rejected(self):
        for field in ("offset", "byte_offset", "alarm_lines"):
            with pytest.raises(CheckpointError, match=field):
                make(**{field: -1})

    def test_json_round_trip(self):
        cp = make()
        assert Checkpoint.from_json(cp.to_json()) == cp

    def test_json_is_versioned_and_canonical(self):
        payload = json.loads(make().to_json())
        assert payload["format"] == CHECKPOINT_FORMAT
        assert payload["version"] == CHECKPOINT_VERSION
        assert make().to_json() == make().to_json()

    def test_wrong_format_rejected(self):
        payload = json.loads(make().to_json())
        payload["format"] = "other"
        with pytest.raises(CheckpointError, match="not a " + CHECKPOINT_FORMAT):
            Checkpoint.from_json(json.dumps(payload))

    def test_wrong_version_rejected(self):
        payload = json.loads(make().to_json())
        payload["version"] = 99
        with pytest.raises(CheckpointError, match="unsupported checkpoint version"):
            Checkpoint.from_json(json.dumps(payload))

    def test_truncated_json_rejected(self):
        with pytest.raises(CheckpointError, match="not valid JSON"):
            Checkpoint.from_json(make().to_json()[:-5])

    def test_missing_field_rejected(self):
        payload = json.loads(make().to_json())
        del payload["byte_offset"]
        with pytest.raises(CheckpointError, match="byte_offset"):
            Checkpoint.from_json(json.dumps(payload))


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "cp.json"
        cp = make()
        save_checkpoint(path, cp)
        assert load_checkpoint(path) == cp

    def test_save_overwrites_atomically(self, tmp_path):
        path = tmp_path / "cp.json"
        save_checkpoint(path, make(offset=1))
        save_checkpoint(path, make(offset=2))
        assert load_checkpoint(path).offset == 2
        # No stray temp file left behind.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["cp.json"]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "absent.json")

    def test_load_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "cp.json"
        path.write_text("garbage")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
