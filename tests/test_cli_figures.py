"""CLI figure-command tests on the quick paths."""

import pytest

from repro.cli import main


class TestQuickFigures:
    def test_fig4_quick(self, capsys):
        assert main(["figure", "fig4", "--quick", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "median daily" in out

    def test_fig5_quick(self, capsys):
        assert main(["figure", "fig5", "--quick", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "one-day cases" in out

    @pytest.mark.slow
    def test_fig10_quick(self, capsys):
        assert main(["figure", "fig10", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "25-AS" in out and "63-AS" in out

    @pytest.mark.slow
    def test_fig11_quick(self, capsys):
        assert main(["figure", "fig11", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "partial-moas-detection" in out

    @pytest.mark.slow
    def test_headline_quick(self, capsys):
        assert main(["figure", "headline", "--quick", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "detect@30%" in out


class TestHijackVariants:
    def test_partial_deployment(self, capsys):
        assert main([
            "hijack", "--size", "25", "--deployment", "partial",
            "--seed", "3", "--attackers", "0.2",
        ]) == 0
        assert "deployment: partial" in capsys.readouterr().out

    def test_two_origins(self, capsys):
        assert main([
            "hijack", "--size", "25", "--origins", "2", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "origins" in out
