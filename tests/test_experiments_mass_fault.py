"""Tests for the in-simulation mass-origination fault replay."""

import pytest

from repro.experiments.exp_mass_fault import run_mass_fault
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestValidation:
    def test_bad_fault_share(self, graph):
        with pytest.raises(ValueError):
            run_mass_fault(graph, fault_share=0.0)
        with pytest.raises(ValueError):
            run_mass_fault(graph, fault_share=1.5)

    def test_bad_prefix_count(self, graph):
        with pytest.raises(ValueError):
            run_mass_fault(graph, prefixes_per_stub=0)


class TestFaultReplay:
    def test_fault_disturbs_without_detection(self, graph):
        result = run_mass_fault(graph, detect=False, seed=1)
        assert result.n_hijacked_prefixes >= 1
        assert result.disturbed_prefixes > 0
        assert result.mean_poisoned_share > 0.0
        assert result.alarms == 0

    def test_detection_contains_the_fault(self, graph):
        undefended = run_mass_fault(graph, detect=False, seed=1)
        defended = run_mass_fault(graph, detect=True, seed=1)
        assert defended.alarms > 0
        assert defended.mean_poisoned_share < undefended.mean_poisoned_share
        assert defended.disturbance_rate <= undefended.disturbance_rate

    def test_collector_sees_the_moas_burst(self, graph):
        """The vantage collector records a burst of MOAS cases — the
        Figure 4 spike signature, produced by the simulator itself."""
        result = run_mass_fault(graph, detect=False, seed=1)
        # A collector sees a MOAS case for (roughly) every hijacked prefix
        # whose bogus route reached a vantage; at least some must show.
        assert result.collector_moas_cases > 0
        assert result.collector_moas_cases <= result.n_hijacked_prefixes

    def test_prefix_accounting(self, graph):
        result = run_mass_fault(
            graph, fault_share=0.5, prefixes_per_stub=2, seed=2
        )
        n_stubs = len(graph.stub_asns())
        assert result.n_prefixes == 2 * n_stubs
        assert result.n_hijacked_prefixes <= result.n_prefixes

    def test_deterministic(self, graph):
        a = run_mass_fault(graph, detect=True, seed=5)
        b = run_mass_fault(graph, detect=True, seed=5)
        assert a == b

    def test_explicit_faulty_as(self, graph):
        faulty = graph.transit_asns()[0]
        result = run_mass_fault(graph, faulty_as=faulty, seed=3)
        assert result.n_hijacked_prefixes > 0
