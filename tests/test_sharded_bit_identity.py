"""Bit-identity pin: the sharded simulator equals the serial engine.

The sharded runner partitions speakers across forked worker processes
and advances them under a conservative barrier clock, so every firing
still happens in the exact serial ``(time, priority, seq)`` order.  The
contract is bit-identity, not statistical agreement: outcomes, alarm
logs (content *and* order) and masked metrics must match the serial
engine exactly, for any shard count, and warm-start baselines must be
interchangeable between the two engines.

The golden grid is shared with tests/test_perf_bit_identity.py — those
values were captured from the pre-optimisation engine, so passing here
chains sharded == serial == original.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    run_hijack_scenario,
    run_hijack_scenario_instrumented,
)
from repro.experiments.sharded_run import masked_metrics, run_sharded
from repro.warmstart.cache import WarmStartCache
from tests.test_perf_bit_identity import GOLDEN, _scenario


def _assert_matches_golden(outcome, expected) -> None:
    assert sorted(outcome.poisoned) == expected["poisoned"]
    assert outcome.n_remaining == expected["n_remaining"]
    assert outcome.alarms == expected["alarms"]
    assert outcome.routes_suppressed == expected["suppressed"]
    assert len(outcome.capable) == expected["n_capable"]
    assert outcome.events_processed == expected["events"]
    assert outcome.updates_sent == expected["updates"]


@pytest.mark.parametrize(
    "size,deployment,timing", sorted(GOLDEN), ids=lambda value: str(value)
)
def test_two_shard_outcome_matches_golden_grid(size, deployment, timing):
    outcome = run_hijack_scenario(
        _scenario(size, deployment, timing), shards=2
    )
    _assert_matches_golden(outcome, GOLDEN[(size, deployment, timing)])


@pytest.mark.parametrize("shards", [1, 3, 4])
def test_other_shard_counts_match_golden(shards):
    scenario = _scenario(63, "FULL", "SIMULTANEOUS")
    outcome = run_hijack_scenario(scenario, shards=shards)
    _assert_matches_golden(outcome, GOLDEN[(63, "FULL", "SIMULTANEOUS")])


@pytest.mark.parametrize("timing", ["SIMULTANEOUS", "POST_CONVERGENCE"])
def test_alarm_log_is_identical_including_order(timing):
    scenario = _scenario(63, "FULL", timing)
    serial = run_hijack_scenario_instrumented(scenario)
    sharded = run_sharded(scenario, n_shards=2, instrumented=True)
    assert sharded.outcome.alarms == serial.outcome.alarms
    assert list(sharded.alarms) == list(serial.alarms)


def test_masked_metrics_are_identical():
    """Merged worker metrics equal serial metrics once the shard-local
    instruments (queue depth, shard.*) are masked out."""
    scenario = _scenario(63, "FULL", "SIMULTANEOUS")
    serial = run_hijack_scenario_instrumented(scenario)
    sharded = run_sharded(scenario, n_shards=2, instrumented=True)
    assert sharded.metrics is not None and serial.metrics is not None
    assert masked_metrics(sharded.metrics) == masked_metrics(serial.metrics)


def test_sharded_repeat_run_is_bit_identical():
    scenario = _scenario(63, "FULL", "SIMULTANEOUS")
    first = run_sharded(scenario, n_shards=2)
    second = run_sharded(scenario, n_shards=2)
    assert first.outcome.masked_timing() == second.outcome.masked_timing()
    assert list(first.alarms) == list(second.alarms)


def test_shard_stats_account_for_the_topology():
    scenario = _scenario(63, "FULL", "SIMULTANEOUS")
    run = run_sharded(scenario, n_shards=2)
    stats = run.stats
    assert stats.n_shards == 2
    assert sum(stats.shard_sizes) == 63
    assert 0 < stats.cut_edges < stats.total_edges
    assert stats.ticks >= stats.solo_ticks >= 0
    assert stats.cross_messages > 0 and stats.cross_batches > 0
    assert stats.max_batch_size >= 1
    payload = stats.to_dict()
    assert payload["mean_batch_size"] > 0


class TestWarmStartInterchange:
    """Baselines are engine-agnostic: either engine may capture, either
    may consume, with bit-identical warm outcomes."""

    def test_sharded_capture_sharded_hit(self):
        cache = WarmStartCache()
        scenario = _scenario(63, "FULL", "POST_CONVERGENCE")
        cold = run_sharded(scenario, n_shards=2, warm_start=cache)
        assert cold.warm_info["hit"] is False
        warm = run_sharded(scenario, n_shards=2, warm_start=cache)
        assert warm.warm_info["hit"] is True
        assert warm.outcome.masked_timing() == cold.outcome.masked_timing()
        assert list(warm.alarms) == list(cold.alarms)

    def test_serial_consumes_sharded_baseline(self):
        # ``instrumented`` is part of the baseline key, so both engines
        # run instrumented to share the entry.
        cache = WarmStartCache()
        scenario = _scenario(63, "FULL", "POST_CONVERGENCE")
        cold = run_sharded(
            scenario, n_shards=2, warm_start=cache, instrumented=True
        )
        assert cold.warm_info["hit"] is False
        warm = run_hijack_scenario_instrumented(scenario, warm_start=cache)
        assert warm.warm_start["hit"] is True
        assert warm.outcome.masked_timing() == cold.outcome.masked_timing()

    def test_sharded_consumes_serial_baseline(self):
        cache = WarmStartCache()
        scenario = _scenario(63, "FULL", "POST_CONVERGENCE")
        cold = run_hijack_scenario_instrumented(scenario, warm_start=cache)
        assert cold.warm_start["hit"] is False
        warm = run_sharded(
            scenario, n_shards=3, warm_start=cache, instrumented=True
        )
        assert warm.warm_info["hit"] is True
        assert warm.outcome.masked_timing() == cold.outcome.masked_timing()
        assert list(warm.alarms) == list(cold.alarms)
