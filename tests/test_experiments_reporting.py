"""Unit tests for plain-text reporting."""

import pytest

from repro.experiments.reporting import format_series_table, format_sweep_table
from repro.experiments.runner import DeploymentKind
from repro.experiments.sweep import SweepPoint, SweepResult


def sweep(deployment=DeploymentKind.NONE, values=(0.5, 0.6), fractions=(0.1, 0.2)):
    result = SweepResult(deployment=deployment, n_origins=1, topology_size=46)
    for fraction, value in zip(fractions, values):
        result.points.append(
            SweepPoint(
                attacker_fraction=fraction,
                n_attackers=round(fraction * 46),
                mean_poisoned_fraction=value,
                min_poisoned_fraction=value,
                max_poisoned_fraction=value,
                mean_alarms=0.0,
                runs=15,
            )
        )
    return result


class TestSweepTable:
    def test_renders_columns_per_arm(self):
        text = format_sweep_table(
            [sweep(DeploymentKind.NONE), sweep(DeploymentKind.FULL, (0.0, 0.1))],
            title="Figure 9",
        )
        assert "Figure 9" in text
        assert "normal-bgp/46AS" in text
        assert "full-moas-detection/46AS" in text
        assert "50.00%" in text
        assert "10%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_sweep_table([])

    def test_mismatched_axes_rejected(self):
        with pytest.raises(ValueError):
            format_sweep_table([sweep(), sweep(fractions=(0.1, 0.3))])


class TestSeriesTable:
    def test_renders(self):
        text = format_series_table(
            [(0, 683), (1, 690)], headers=("day", "count"), title="Fig 4"
        )
        assert "Fig 4" in text
        assert "683" in text

    def test_downsamples_long_series(self):
        series = [(i, i) for i in range(1000)]
        text = format_series_table(series, headers=("x", "y"), max_rows=10)
        assert len(text.splitlines()) == 11  # header + 10 rows
