"""Unit tests for the DNS substrate."""

import pytest

from repro.dnssub.dnssec import KeyRing, sign_record, verify_record
from repro.dnssub.records import (
    MoasRecordData,
    RecordType,
    ResourceRecord,
)
from repro.dnssub.resolver import ResolutionError, Resolver
from repro.dnssub.zone import Zone, ZoneError, name_in_zone


def rr(name="host.example.arpa", rtype=RecordType.TXT, data="x", ttl=60):
    return ResourceRecord(name, rtype, data, ttl=ttl)


class TestRecords:
    def test_name_normalised(self):
        assert rr(name="Host.Example.ARPA.").name == "host.example.arpa"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            rr(name="")

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            rr(ttl=-1)

    def test_moasrr_requires_moas_data(self):
        with pytest.raises(TypeError):
            ResourceRecord("x.moas.arpa", RecordType.MOASRR, "not-moas-data")

    def test_moas_data_validation(self):
        with pytest.raises(ValueError):
            MoasRecordData([])
        data = MoasRecordData([2, 1, 1])
        assert data.origins == frozenset({1, 2})
        assert data.authorises(1)
        assert not data.authorises(3)

    def test_equality_ignores_signature(self):
        keyring = KeyRing()
        record = rr()
        signed = sign_record(record, keyring, "example.arpa")
        assert record == signed

    def test_immutable(self):
        with pytest.raises(AttributeError):
            rr().ttl = 5


class TestZone:
    def test_name_in_zone(self):
        assert name_in_zone("a.b.example", "example")
        assert name_in_zone("example", "example")
        assert not name_in_zone("counterexample", "example")

    def test_add_outside_zone_rejected(self):
        zone = Zone("example.arpa")
        with pytest.raises(ZoneError):
            zone.add(rr(name="other.domain"))

    def test_lookup(self):
        zone = Zone("example.arpa")
        record = rr()
        zone.add(record)
        assert zone.lookup("host.example.arpa", RecordType.TXT) == [record]
        assert zone.lookup("host.example.arpa", RecordType.A) == []

    def test_rrset_accumulates(self):
        zone = Zone("example.arpa")
        zone.add(rr(data="a"))
        zone.add(rr(data="b"))
        assert len(zone.lookup("host.example.arpa", RecordType.TXT)) == 2

    def test_replace(self):
        zone = Zone("example.arpa")
        zone.add(rr(data="a"))
        zone.replace(rr(data="b"))
        records = zone.lookup("host.example.arpa", RecordType.TXT)
        assert [r.data for r in records] == ["b"]

    def test_remove(self):
        zone = Zone("example.arpa")
        zone.add(rr())
        assert zone.remove("host.example.arpa", RecordType.TXT) == 1
        assert zone.remove("host.example.arpa", RecordType.TXT) == 0

    def test_empty_apex_rejected(self):
        with pytest.raises(ZoneError):
            Zone("")


class TestResolver:
    def make(self):
        resolver = Resolver()
        zone = Zone("example.arpa")
        zone.add(rr())
        resolver.host_zone(zone)
        return resolver

    def test_resolve(self):
        resolver = self.make()
        records = resolver.resolve("host.example.arpa", RecordType.TXT)
        assert records[0].data == "x"

    def test_missing_name_raises(self):
        with pytest.raises(ResolutionError):
            self.make().resolve("nope.example.arpa", RecordType.TXT)

    def test_uncovered_name_raises(self):
        with pytest.raises(ResolutionError):
            self.make().resolve("other.tld", RecordType.TXT)

    def test_try_resolve_returns_none(self):
        assert self.make().try_resolve("other.tld", RecordType.TXT) is None

    def test_longest_apex_wins(self):
        resolver = Resolver()
        parent = Zone("arpa")
        parent.add(ResourceRecord("host.example.arpa", RecordType.TXT, "parent"))
        child = Zone("example.arpa")
        child.add(ResourceRecord("host.example.arpa", RecordType.TXT, "child"))
        resolver.host_zone(parent)
        resolver.host_zone(child)
        assert resolver.resolve("host.example.arpa", RecordType.TXT)[0].data == "child"

    def test_duplicate_zone_rejected(self):
        resolver = self.make()
        with pytest.raises(ValueError):
            resolver.host_zone(Zone("example.arpa"))

    def test_cache_hits(self):
        resolver = self.make()
        resolver.resolve("host.example.arpa", RecordType.TXT)
        resolver.resolve("host.example.arpa", RecordType.TXT)
        assert resolver.cache_hits == 1
        resolver.invalidate_cache()
        resolver.resolve("host.example.arpa", RecordType.TXT)
        assert resolver.cache_hits == 1

    def test_reachability_gate(self):
        resolver = Resolver(reachability=lambda apex: False)
        zone = Zone("example.arpa")
        zone.add(rr())
        resolver.host_zone(zone)
        with pytest.raises(ResolutionError):
            resolver.resolve("host.example.arpa", RecordType.TXT)

    def test_secure_requires_keyring(self):
        with pytest.raises(ValueError):
            Resolver(secure=True)

    def test_secure_rejects_unsigned(self):
        keyring = KeyRing()
        resolver = Resolver(keyring=keyring, secure=True)
        zone = Zone("example.arpa")
        zone.add(rr())  # unsigned
        resolver.host_zone(zone)
        with pytest.raises(ResolutionError):
            resolver.resolve("host.example.arpa", RecordType.TXT)


class TestDnssec:
    def test_sign_verify_roundtrip(self):
        keyring = KeyRing()
        signed = sign_record(rr(), keyring, "example.arpa")
        assert verify_record(signed, keyring, "example.arpa")

    def test_unsigned_fails(self):
        assert not verify_record(rr(), KeyRing(), "example.arpa")

    def test_wrong_zone_key_fails(self):
        keyring = KeyRing()
        signed = sign_record(rr(), keyring, "example.arpa")
        assert not verify_record(signed, keyring, "other.arpa")

    def test_tampered_record_fails(self):
        keyring = KeyRing()
        signed = sign_record(rr(data="genuine"), keyring, "example.arpa")
        tampered = ResourceRecord(
            signed.name, signed.rtype, "forged", signed.ttl, signed.signature
        )
        assert not verify_record(tampered, keyring, "example.arpa")

    def test_different_master_secrets_differ(self):
        a = KeyRing(b"secret-a")
        b = KeyRing(b"secret-b")
        assert a.key_for_zone("z") != b.key_for_zone("z")

    def test_keyring_derivation_stable(self):
        assert KeyRing().key_for_zone("z") == KeyRing().key_for_zone("z")
