"""Unit and property tests for the prefix trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import Prefix, PrefixError, covers
from repro.net.trie import PrefixTrie

prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


class TestBasics:
    def test_empty(self):
        trie = PrefixTrie()
        assert len(trie) == 0
        assert not trie
        assert trie.longest_match(0) is None
        assert trie.exact(Prefix.parse("10.0.0.0/8")) is None

    def test_insert_and_exact(self):
        trie = PrefixTrie()
        assert trie.insert(Prefix.parse("10.0.0.0/8"), "a") is None
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "a"
        assert len(trie) == 1

    def test_insert_replaces(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "old")
        assert trie.insert(p, "new") == "old"
        assert trie.exact(p) == "new"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.0.0.0/8")
        trie.insert(p, "a")
        assert trie.remove(p) == "a"
        assert trie.remove(p) is None
        assert len(trie) == 0

    def test_remove_keeps_siblings(self):
        trie = PrefixTrie()
        a, b = Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/9")
        trie.insert(a, 1)
        trie.insert(b, 2)
        trie.remove(a)
        assert trie.exact(b) == 2

    def test_remove_interior_keeps_descendants(self):
        trie = PrefixTrie()
        parent, child = Prefix.parse("10.0.0.0/8"), Prefix.parse("10.2.0.0/16")
        trie.insert(parent, "p")
        trie.insert(child, "c")
        trie.remove(parent)
        assert trie.exact(child) == "c"
        assert len(trie) == 1

    def test_clear(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), 1)
        trie.clear()
        assert len(trie) == 0


class TestLongestMatch:
    def test_more_specific_wins(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "general")
        trie.insert(Prefix.parse("10.2.0.0/16"), "specific")
        match = trie.longest_match(int.from_bytes(bytes([10, 2, 3, 4]), "big"))
        assert match == (Prefix.parse("10.2.0.0/16"), "specific")

    def test_falls_back_to_less_specific(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "general")
        trie.insert(Prefix.parse("10.2.0.0/16"), "specific")
        match = trie.longest_match(int.from_bytes(bytes([10, 9, 9, 9]), "big"))
        assert match == (Prefix.parse("10.0.0.0/8"), "general")

    def test_default_route(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        assert trie.longest_match(12345) == (Prefix.parse("0.0.0.0/0"), "default")

    def test_no_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.longest_match(int.from_bytes(bytes([11, 0, 0, 1]), "big")) is None

    def test_address_out_of_range(self):
        with pytest.raises(PrefixError):
            PrefixTrie().longest_match(1 << 33)

    def test_covering_prefix(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        found = trie.covering(Prefix.parse("10.2.0.0/16"))
        assert found == (Prefix.parse("10.0.0.0/8"), "a")

    def test_covering_self(self):
        trie = PrefixTrie()
        p = Prefix.parse("10.2.0.0/16")
        trie.insert(p, "x")
        assert trie.covering(p) == (p, "x")


class TestIteration:
    def test_items_sorted(self):
        trie = PrefixTrie()
        entries = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("10.2.0.0/16"),
            Prefix.parse("192.0.2.0/24"),
        ]
        for i, p in enumerate(entries):
            trie.insert(p, i)
        assert list(trie.prefixes()) == entries


class TestAgainstReference:
    @given(st.lists(prefixes, max_size=30), addresses)
    def test_longest_match_agrees_with_linear_scan(self, prefix_list, address):
        trie = PrefixTrie()
        unique = list(dict.fromkeys(prefix_list))
        for p in unique:
            trie.insert(p, str(p))
        expected = covers(unique, address)
        got = trie.longest_match(address)
        if expected is None:
            assert got is None
        else:
            assert got is not None
            assert got[0] == expected

    @given(st.lists(prefixes, max_size=30))
    def test_insert_remove_roundtrip(self, prefix_list):
        trie = PrefixTrie()
        unique = list(dict.fromkeys(prefix_list))
        for p in unique:
            trie.insert(p, str(p))
        assert len(trie) == len(unique)
        assert sorted(trie.prefixes()) == sorted(unique)
        for p in unique:
            assert trie.remove(p) == str(p)
        assert len(trie) == 0
        # Fully pruned: the root has no children left.
        assert trie._root.children == [None, None]


def _addr(*octets):
    return int.from_bytes(bytes(octets), "big")


class TestRemoveEdgeCases:
    def test_remove_default_route_restores_no_match(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("0.0.0.0/0"), "default")
        trie.insert(Prefix.parse("10.0.0.0/8"), "ten")
        outside = _addr(192, 168, 0, 1)
        assert trie.longest_match(outside) == (
            Prefix.parse("0.0.0.0/0"), "default",
        )
        assert trie.remove(Prefix.parse("0.0.0.0/0")) == "default"
        # Addresses outside 10/8 lose their fallback; 10/8 is untouched.
        assert trie.longest_match(outside) is None
        assert trie.longest_match(_addr(10, 1, 2, 3)) == (
            Prefix.parse("10.0.0.0/8"), "ten",
        )

    def test_exact_host_route(self):
        trie = PrefixTrie()
        host = Prefix.parse("10.0.0.1/32")
        trie.insert(host, "host")
        assert trie.longest_match(_addr(10, 0, 0, 1)) == (host, "host")
        assert trie.longest_match(_addr(10, 0, 0, 2)) is None
        assert trie.remove(host) == "host"
        assert trie.longest_match(_addr(10, 0, 0, 1)) is None
        assert len(trie) == 0
        assert not trie

    def test_remove_covering_prefix_keeps_more_specific_lpm(self):
        trie = PrefixTrie()
        covering = Prefix.parse("10.0.0.0/8")
        specific = Prefix.parse("10.2.0.0/16")
        trie.insert(covering, "cover")
        trie.insert(specific, "exact")
        assert trie.remove(covering) == "cover"
        # Under the surviving more-specific: still matched.
        assert trie.longest_match(_addr(10, 2, 9, 9)) == (specific, "exact")
        # Under the removed covering range only: no match any more.
        assert trie.longest_match(_addr(10, 200, 0, 1)) is None
        assert trie.covering(Prefix.parse("10.200.0.0/16")) is None

    def test_remove_prunes_branches(self):
        # After removing a deep leaf the spine of interior nodes must be
        # pruned, or repeated insert/remove churn leaks nodes.
        trie = PrefixTrie()
        deep = Prefix.parse("10.1.2.3/32")
        shallow = Prefix.parse("10.0.0.0/8")
        trie.insert(shallow, "s")
        trie.insert(deep, "d")
        trie.remove(deep)
        root = trie._root
        node = root
        depth = 0
        while node.children[0] is not None or node.children[1] is not None:
            node = node.children[0] if node.children[0] is not None \
                else node.children[1]
            depth += 1
        # Only the 8 bits of the surviving /8 remain below the root.
        assert depth == 8
        assert len(trie) == 1

    def test_remove_missing_prefix_is_harmless(self):
        trie = PrefixTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "a")
        assert trie.remove(Prefix.parse("11.0.0.0/8")) is None
        assert trie.remove(Prefix.parse("10.0.0.0/9")) is None
        assert len(trie) == 1
        assert trie.exact(Prefix.parse("10.0.0.0/8")) == "a"
