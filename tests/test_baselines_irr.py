"""Unit and behavioural tests for the IRR filtering baseline."""

import random

import pytest

from repro.baselines.irr import IrrRegistry, IrrValidator
from repro.bgp.network import Network
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


class TestRegistry:
    def test_register_lookup(self):
        reg = IrrRegistry()
        reg.register(P, [1, 2])
        record = reg.lookup(P)
        assert record.origins == frozenset({1, 2})
        assert not record.stale

    def test_empty_origins_rejected(self):
        with pytest.raises(ValueError):
            IrrRegistry().register(P, [])

    def test_stale_record(self):
        reg = IrrRegistry()
        reg.register(P, [1])
        reg.make_stale(P, [99])
        record = reg.lookup(P)
        assert record.stale
        assert record.origins == frozenset({99})

    def test_drop(self):
        reg = IrrRegistry()
        reg.register(P, [1])
        reg.drop(P)
        assert P not in reg

    def test_from_ground_truth_full_coverage(self):
        truth = {P: frozenset({1}), Q: frozenset({2})}
        reg = IrrRegistry.from_ground_truth(
            truth, coverage=1.0, staleness=0.0, rng=random.Random(0)
        )
        assert len(reg) == 2
        assert reg.lookup(P).origins == frozenset({1})

    def test_from_ground_truth_partial_coverage(self):
        truth = {
            Prefix((10 << 24) | (i << 16), 16): frozenset({100 + i})
            for i in range(200)
        }
        reg = IrrRegistry.from_ground_truth(
            truth, coverage=0.5, staleness=0.0, rng=random.Random(0)
        )
        assert 60 < len(reg) < 140

    def test_from_ground_truth_staleness(self):
        truth = {
            Prefix((10 << 24) | (i << 16), 16): frozenset({100 + i})
            for i in range(200)
        }
        reg = IrrRegistry.from_ground_truth(
            truth, coverage=1.0, staleness=0.5, rng=random.Random(0),
            stale_origin_pool=[9999],
        )
        stale = sum(1 for p in truth if reg.lookup(p).stale)
        assert 60 < stale < 140
        assert all(
            reg.lookup(p).origins == frozenset({9999})
            for p in truth if reg.lookup(p).stale
        )

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            IrrRegistry.from_ground_truth({}, 1.5, 0.0, random.Random(0))
        with pytest.raises(ValueError):
            IrrRegistry.from_ground_truth({}, 1.0, -0.1, random.Random(0))


class TestValidatorBehaviour:
    def run_chain(self, chain_graph, registry, capable=(2, 3, 4)):
        net = Network(chain_graph)
        validators = {}
        for asn in capable:
            validator = IrrValidator(registry)
            net.speaker(asn).add_import_validator(validator)
            validators[asn] = validator
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        net.originate(5, P)  # false origin
        net.run_to_convergence()
        return net, validators

    def test_fresh_registry_blocks_hijack(self, chain_graph):
        reg = IrrRegistry()
        reg.register(P, [1])
        net, validators = self.run_chain(chain_graph, reg)
        assert net.best_origins(P)[4] == 1
        assert sum(v.rejections for v in validators.values()) >= 1

    def test_unregistered_prefix_unprotected(self, chain_graph):
        reg = IrrRegistry()  # empty: the coverage gap
        net, validators = self.run_chain(chain_graph, reg)
        assert net.best_origins(P)[4] == 5
        assert sum(v.unfilterable for v in validators.values()) >= 1

    def test_stale_record_blocks_legitimate_origin(self, chain_graph):
        """The worst IRR failure: an outdated record rejects the genuine
        route while the topology still spreads the bogus one."""
        reg = IrrRegistry()
        reg.make_stale(P, [999])  # neither 1 nor 5 matches
        net, validators = self.run_chain(chain_graph, reg)
        # Both routes rejected at the checking nodes: the genuine origin
        # is unreachable from behind them.
        assert net.best_origins(P)[4] is None
        assert sum(v.rejections for v in validators.values()) >= 2

    def test_stale_record_matching_attacker_admits_attacker(self, chain_graph):
        reg = IrrRegistry()
        reg.make_stale(P, [5])  # the stale holder happens to be the attacker
        net, _ = self.run_chain(chain_graph, reg)
        assert net.best_origins(P)[4] == 5
