"""Tests for the scaling and false-alarm experiments (small grids)."""

import pytest

from repro.experiments.exp_false_alarms import run_false_alarm_experiment
from repro.experiments.exp_scaling import ScalingPoint, run_scaling_experiment
from repro.topology.generators import generate_paper_topology


@pytest.fixture(scope="module")
def graph():
    return generate_paper_topology(25, seed=4)


class TestScalingExperiment:
    def test_structure(self):
        result = run_scaling_experiment(
            sizes=(25,), topologies_per_size=1, runs_per_topology=2
        )
        assert result.attacker_fraction == 0.30
        assert len(result.points) == 1
        point = result.points[0]
        assert point.size == 25
        assert point.runs == 2
        assert 0 <= point.mean_poisoned_detect <= 1
        assert point.mean_poisoned_detect <= point.mean_poisoned_normal

    def test_protection_factor(self):
        point = ScalingPoint(
            size=25, mean_poisoned_detect=0.1, mean_poisoned_normal=0.8,
            topologies=1, runs=1,
        )
        assert point.protection_factor == pytest.approx(8.0)
        zero = ScalingPoint(
            size=25, mean_poisoned_detect=0.0, mean_poisoned_normal=0.8,
            topologies=1, runs=1,
        )
        assert zero.protection_factor == float("inf")

    def test_detection_series(self):
        result = run_scaling_experiment(
            sizes=(25,), topologies_per_size=1, runs_per_topology=1
        )
        series = result.detection_series()
        assert series[0][0] == 25


class TestFalseAlarmExperiment:
    def test_no_stripping_no_alarms(self, graph):
        points = run_false_alarm_experiment(
            graph, strip_fractions=(0.0,), n_runs=3
        )
        assert points[0].false_alarm_rate == 0.0
        assert points[0].suppressed_valid_routes == 0
        assert points[0].unreachable_fraction == 0.0

    def test_stripping_alarms_without_harm(self, graph):
        points = run_false_alarm_experiment(
            graph, strip_fractions=(0.5,), n_runs=3
        )
        point = points[0]
        assert point.false_alarm_rate > 0.0
        assert point.suppressed_valid_routes == 0
        assert point.unreachable_fraction == 0.0

    def test_point_per_fraction(self, graph):
        points = run_false_alarm_experiment(
            graph, strip_fractions=(0.0, 0.5), n_runs=2
        )
        assert [p.strip_fraction for p in points] == [0.0, 0.5]
        assert all(p.runs == 2 for p in points)
