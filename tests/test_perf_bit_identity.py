"""Bit-identity pin: the optimised hot path equals the pre-change engine.

The PR that rebuilt the single-run hot path (incremental per-prefix
decisions, calendar event queue, route interning, batched same-tick
delivery, trace gating) promised bit-identical outcomes.  The golden
values below were captured by running the *pre-change* engine (commit
9172679's code) over a 12-combination grid — two topology sizes, three
deployment kinds, both attack timings — and they are embedded here
verbatim so every future optimisation pass re-proves the equivalence.

If this test fails, the engine's observable behaviour changed: that is a
correctness bug in an optimisation, never an acceptable trade for speed.
Update the goldens only for a deliberate, documented semantic change.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    AttackTiming,
    DeploymentKind,
    HijackScenario,
    run_hijack_scenario,
)
from repro.topology.generators import generate_paper_topology

#: (size, deployment, timing) -> outcome fields from the pre-change engine.
#: poisoned/capable are sorted ASN lists; events/updates are the
#: deterministic throughput counters (events_processed, updates_sent).
GOLDEN = {
    (25, "NONE", "SIMULTANEOUS"): {
        "poisoned": [5, 24, 1920], "n_remaining": 23, "alarms": 0,
        "suppressed": 0, "n_capable": 0, "events": 110, "updates": 44,
    },
    (25, "NONE", "POST_CONVERGENCE"): {
        "poisoned": [5, 24, 1920], "n_remaining": 23, "alarms": 0,
        "suppressed": 0, "n_capable": 0, "events": 117, "updates": 51,
    },
    (25, "PARTIAL", "SIMULTANEOUS"): {
        "poisoned": [5, 24, 1920], "n_remaining": 23, "alarms": 2,
        "suppressed": 1, "n_capable": 12, "events": 110, "updates": 44,
    },
    (25, "PARTIAL", "POST_CONVERGENCE"): {
        "poisoned": [24], "n_remaining": 23, "alarms": 4,
        "suppressed": 2, "n_capable": 12, "events": 119, "updates": 53,
    },
    (25, "FULL", "SIMULTANEOUS"): {
        "poisoned": [], "n_remaining": 23, "alarms": 14,
        "suppressed": 6, "n_capable": 25, "events": 122, "updates": 56,
    },
    (25, "FULL", "POST_CONVERGENCE"): {
        "poisoned": [], "n_remaining": 23, "alarms": 4,
        "suppressed": 2, "n_capable": 25, "events": 110, "updates": 44,
    },
    (63, "NONE", "SIMULTANEOUS"): {
        "poisoned": [2, 8, 19, 20, 23, 1096, 1183, 1186, 1302, 1332, 1385,
                     1509, 1573, 1618, 1626, 1633, 1703, 1710, 1720, 1724,
                     1954, 1957],
        "n_remaining": 61, "alarms": 0, "suppressed": 0, "n_capable": 0,
        "events": 696, "updates": 318,
    },
    (63, "NONE", "POST_CONVERGENCE"): {
        "poisoned": [2, 8, 19, 20, 23, 1096, 1183, 1186, 1302, 1332, 1385,
                     1509, 1573, 1618, 1626, 1633, 1703, 1710, 1720, 1724,
                     1954, 1957],
        "n_remaining": 61, "alarms": 0, "suppressed": 0, "n_capable": 0,
        "events": 807, "updates": 429,
    },
    (63, "PARTIAL", "SIMULTANEOUS"): {
        "poisoned": [2, 20, 1096, 1183, 1302, 1573, 1618, 1703, 1720,
                     1954, 1957],
        "n_remaining": 61, "alarms": 69, "suppressed": 42, "n_capable": 32,
        "events": 780, "updates": 402,
    },
    (63, "PARTIAL", "POST_CONVERGENCE"): {
        "poisoned": [2, 20, 1096, 1183, 1302, 1573, 1618, 1703, 1720,
                     1954, 1957],
        "n_remaining": 61, "alarms": 47, "suppressed": 27, "n_capable": 32,
        "events": 776, "updates": 398,
    },
    (63, "FULL", "SIMULTANEOUS"): {
        "poisoned": [], "n_remaining": 61, "alarms": 156,
        "suppressed": 93, "n_capable": 63, "events": 870, "updates": 492,
    },
    (63, "FULL", "POST_CONVERGENCE"): {
        "poisoned": [], "n_remaining": 61, "alarms": 30,
        "suppressed": 15, "n_capable": 63, "events": 715, "updates": 337,
    },
}


def _scenario(size: int, deployment: str, timing: str) -> HijackScenario:
    graph = generate_paper_topology(size, seed=8)
    ases = sorted(graph.asns())
    return HijackScenario(
        graph=graph,
        origins=[ases[10]],
        attackers=[ases[40 % len(ases)], ases[20]],
        deployment=DeploymentKind[deployment],
        timing=AttackTiming[timing],
        seed=3,
    )


@pytest.mark.parametrize(
    "size,deployment,timing",
    sorted(GOLDEN),
    ids=lambda value: str(value),
)
def test_outcome_matches_pre_optimisation_engine(size, deployment, timing):
    outcome = run_hijack_scenario(_scenario(size, deployment, timing))
    golden = GOLDEN[(size, deployment, timing)]
    assert sorted(int(asn) for asn in outcome.poisoned) == golden["poisoned"]
    assert outcome.n_remaining == golden["n_remaining"]
    assert outcome.alarms == golden["alarms"]
    assert outcome.routes_suppressed == golden["suppressed"]
    assert len(outcome.capable) == golden["n_capable"]
    assert outcome.events_processed == golden["events"]
    assert outcome.updates_sent == golden["updates"]


def test_repeat_run_is_bit_identical():
    """Same scenario twice in one process: every deterministic field equal
    (caches, interner state and warm parse tables must not leak into
    outcomes)."""
    first = run_hijack_scenario(_scenario(63, "FULL", "SIMULTANEOUS"))
    second = run_hijack_scenario(_scenario(63, "FULL", "SIMULTANEOUS"))
    assert first.masked_timing() == second.masked_timing()
