"""Unit tests for RouteViews-style dump I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import AsPath, AsPathSegment, SegmentType
from repro.net.addresses import Prefix
from repro.topology.routeviews import (
    DumpFormatError,
    RouteViewsTable,
    parse_table_dump,
    render_table_dump,
)

P = Prefix.parse("192.0.2.0/24")


def sample_table():
    table = RouteViewsTable(date="1998-04-07", collector="oregon")
    table.add(P, 6447, AsPath.from_asns([6447, 1239, 6453, 4621]))
    table.add(P, 7018, AsPath.from_asns([7018, 4621]))
    table.add(Prefix.parse("10.0.0.0/8"), 6447, AsPath.from_asns([6447, 701]))
    return table


class TestTable:
    def test_prefixes(self):
        table = sample_table()
        assert table.prefixes() == [Prefix.parse("10.0.0.0/8"), P]

    def test_entries_for_prefix(self):
        assert len(sample_table().entries_for_prefix(P)) == 2

    def test_origins_by_prefix(self):
        origins = sample_table().origins_by_prefix()
        assert origins[P] == frozenset({4621})
        assert origins[Prefix.parse("10.0.0.0/8")] == frozenset({701})

    def test_moas_visible_in_origins(self):
        table = sample_table()
        table.add(P, 3333, AsPath.from_asns([3333, 9999]))
        assert table.origins_by_prefix()[P] == frozenset({4621, 9999})


class TestRoundtrip:
    def test_render_parse_roundtrip(self):
        table = sample_table()
        parsed = parse_table_dump(render_table_dump(table))
        assert parsed.date == table.date
        assert parsed.collector == table.collector
        assert len(parsed) == len(table)
        for original, reparsed in zip(table.entries, parsed.entries):
            assert original.prefix == reparsed.prefix
            assert original.peer == reparsed.peer
            assert original.as_path == reparsed.as_path

    def test_as_set_roundtrip(self):
        table = RouteViewsTable(date="d")
        path = AsPath(
            [
                AsPathSegment(SegmentType.AS_SEQUENCE, [1, 2]),
                AsPathSegment(SegmentType.AS_SET, [3, 4]),
            ]
        )
        table.add(P, 1, path)
        parsed = parse_table_dump(render_table_dump(table))
        assert parsed.entries[0].as_path == path
        assert parsed.entries[0].origin_asns == frozenset({3, 4})

    @given(
        st.lists(
            st.lists(st.integers(min_value=1, max_value=65535), min_size=1, max_size=6),
            min_size=1,
            max_size=20,
        )
    )
    def test_roundtrip_random_paths(self, paths):
        table = RouteViewsTable(date="x")
        for i, asns in enumerate(paths):
            table.add(Prefix((10 << 24) | (i << 8), 24), asns[0], AsPath.from_asns(asns))
        parsed = parse_table_dump(render_table_dump(table))
        assert [e.as_path for e in parsed.entries] == [e.as_path for e in table.entries]


class TestParsingErrors:
    def test_wrong_field_count(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0.0/8 | 1\n")

    def test_bad_peer(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0.0/8 | x | 1 2\n")

    def test_bad_prefix(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0/8 | 1 | 1 2\n")

    def test_bad_path_token(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0.0/8 | 1 | 1 abc\n")

    def test_unterminated_as_set(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0.0/8 | 1 | 1 {2,3\n")

    def test_empty_path(self):
        with pytest.raises(DumpFormatError):
            parse_table_dump("10.0.0.0/8 | 1 |  \n")

    def test_blank_lines_and_comments_ignored(self):
        text = "# routeviews-dump date=d collector=c\n\n10.0.0.0/8 | 1 | 1 2\n\n"
        table = parse_table_dump(text)
        assert len(table) == 1
        assert table.date == "d"
        assert table.collector == "c"
