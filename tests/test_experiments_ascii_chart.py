"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments.ascii_chart import render_histogram, render_line_chart


class TestLineChart:
    def test_renders_points(self):
        chart = render_line_chart(
            {"a": [(0, 0), (10, 10)]}, width=20, height=5, title="T"
        )
        assert "T" in chart
        assert "*" in chart
        assert "a" in chart  # legend

    def test_two_series_distinct_glyphs(self):
        chart = render_line_chart(
            {"up": [(0, 0), (10, 10)], "down": [(0, 10), (10, 0)]},
            width=20,
            height=5,
        )
        assert "*" in chart and "o" in chart

    def test_axis_labels(self):
        chart = render_line_chart(
            {"a": [(0, 5), (10, 20)]}, width=20, height=5,
            x_label="day", y_label="count",
        )
        assert "day" in chart and "count" in chart
        assert "20" in chart  # y max on axis

    def test_constant_series_does_not_crash(self):
        render_line_chart({"flat": [(0, 5), (10, 5)]}, width=20, height=5)
        render_line_chart({"point": [(3, 5)]}, width=20, height=5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart({})
        with pytest.raises(ValueError):
            render_line_chart({"a": []})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart({"a": [(0, 0)]}, width=5, height=2)

    def test_dimensions(self):
        chart = render_line_chart({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        plot_rows = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_rows) == 8


class TestHistogram:
    def test_bars_scale(self):
        chart = render_histogram([("a", 10), ("b", 5)], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_counts_shown(self):
        chart = render_histogram([("one", 42)])
        assert "42" in chart

    def test_tiny_nonzero_visible(self):
        chart = render_histogram([("big", 10000), ("small", 1)], width=10)
        small_line = chart.splitlines()[1]
        assert "." in small_line or "#" in small_line

    def test_zero_bin(self):
        chart = render_histogram([("a", 0), ("b", 3)])
        assert "0" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_histogram([])
