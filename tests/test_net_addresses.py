"""Unit and property tests for IPv4 prefixes."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import Prefix, PrefixError, aggregate_adjacent, covers

prefixes = st.builds(
    Prefix,
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


class TestParsing:
    def test_parse_basic(self):
        p = Prefix.parse("10.2.0.0/16")
        assert str(p) == "10.2.0.0/16"
        assert p.length == 16

    def test_parse_bare_address_is_host_route(self):
        assert Prefix.parse("192.0.2.1").length == 32

    def test_host_bits_cleared(self):
        assert Prefix.parse("10.2.3.4/16") == Prefix.parse("10.2.0.0/16")

    @pytest.mark.parametrize(
        "text",
        ["10.0.0.0/33", "10.0.0/8", "256.0.0.0/8", "10.0.0.0/x", "a.b.c.d/8", ""],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(PrefixError):
            Prefix.parse(text)

    def test_length_out_of_range_rejected(self):
        with pytest.raises(PrefixError):
            Prefix(0, 33)

    def test_network_out_of_range_rejected(self):
        with pytest.raises(PrefixError):
            Prefix(1 << 32, 8)


class TestValueSemantics:
    def test_equal_prefixes_hash_equal(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.255.255.255/8")
        assert a == b
        assert hash(a) == hash(b)

    def test_immutable(self):
        p = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.length = 16

    def test_ordering(self):
        assert Prefix.parse("9.0.0.0/8") < Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("10.0.0.0/8") < Prefix.parse("10.0.0.0/16")


class TestAlgebra:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.2.0.0/16"))

    def test_does_not_contain_less_specific(self):
        assert not Prefix.parse("10.2.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)
        assert not p.is_subprefix_of(p)

    def test_disjoint(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("11.0.0.0/8")
        assert not a.overlaps(b)

    def test_contains_address(self):
        p = Prefix.parse("10.2.0.0/16")
        assert p.contains_address(int.from_bytes(bytes([10, 2, 3, 4]), "big"))
        assert not p.contains_address(int.from_bytes(bytes([10, 3, 0, 0]), "big"))

    def test_address_range(self):
        p = Prefix.parse("10.2.0.0/16")
        assert p.first_address == (10 << 24) | (2 << 16)
        assert p.last_address == (10 << 24) | (2 << 16) | 0xFFFF
        assert p.size == 65536

    def test_subnets(self):
        low, high = Prefix.parse("10.0.0.0/8").subnets()
        assert str(low) == "10.0.0.0/9"
        assert str(high) == "10.128.0.0/9"

    def test_host_route_has_no_subnets(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/32").subnets()

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet()) == "10.0.0.0/8"

    def test_default_route_has_no_supernet(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").supernet()

    def test_deaggregate(self):
        children = list(Prefix.parse("10.0.0.0/22").deaggregate(24))
        assert [str(c) for c in children] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]

    def test_deaggregate_to_shorter_rejected(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/16").deaggregate(8))

    def test_deaggregate_identity(self):
        p = Prefix.parse("10.0.0.0/16")
        assert list(p.deaggregate(16)) == [p]


class TestCovers:
    def test_longest_match_wins(self):
        table = [Prefix.parse("10.0.0.0/8"), Prefix.parse("10.2.0.0/16")]
        address = int.from_bytes(bytes([10, 2, 1, 1]), "big")
        assert covers(table, address) == Prefix.parse("10.2.0.0/16")

    def test_no_match(self):
        assert covers([Prefix.parse("10.0.0.0/8")], 0) is None


class TestAggregation:
    def test_siblings_aggregate(self):
        a = Prefix.parse("10.0.0.0/9")
        b = Prefix.parse("10.128.0.0/9")
        assert aggregate_adjacent(a, b) == Prefix.parse("10.0.0.0/8")

    def test_non_siblings_do_not(self):
        a = Prefix.parse("10.128.0.0/9")
        b = Prefix.parse("11.0.0.0/9")
        assert aggregate_adjacent(a, b) is None

    def test_equal_prefixes_do_not(self):
        p = Prefix.parse("10.0.0.0/9")
        assert aggregate_adjacent(p, p) is None

    def test_different_lengths_do_not(self):
        assert aggregate_adjacent(
            Prefix.parse("10.0.0.0/9"), Prefix.parse("10.128.0.0/10")
        ) is None


class TestProperties:
    @given(prefixes)
    def test_roundtrip_through_string(self, p):
        assert Prefix.parse(str(p)) == p

    @given(prefixes)
    def test_subnets_partition_parent(self, p):
        if p.length == 32:
            return
        low, high = p.subnets()
        assert p.contains(low) and p.contains(high)
        assert not low.overlaps(high)
        assert low.size + high.size == p.size

    @given(prefixes)
    def test_supernet_contains(self, p):
        if p.length == 0:
            return
        assert p.supernet().contains(p)

    @given(prefixes, prefixes)
    def test_containment_antisymmetry(self, a, b):
        if a.contains(b) and b.contains(a):
            assert a == b

    @given(prefixes)
    def test_subnet_aggregation_roundtrip(self, p):
        if p.length == 32:
            return
        low, high = p.subnets()
        assert aggregate_adjacent(low, high) == p


class TestMemoization:
    """Parse/format caching must be observationally invisible."""

    def test_parse_returns_equivalent_instance(self):
        a = Prefix.parse("10.2.0.0/16")
        b = Prefix.parse("10.2.0.0/16")
        assert a == b
        assert hash(a) == hash(b)
        assert str(a) == str(b) == "10.2.0.0/16"

    def test_parse_cache_keyed_on_raw_text(self):
        # Whitespace is stripped before the cache lookup, so padded and
        # bare spellings share one canonical result.
        assert Prefix.parse("  10.2.0.0/16 ") == Prefix.parse("10.2.0.0/16")

    def test_parse_errors_not_cached_as_successes(self):
        for _ in range(2):  # lru_cache never caches raised exceptions
            with pytest.raises(PrefixError):
                Prefix.parse("10.2.0.0/99")
        assert Prefix.parse("10.2.0.0/24").length == 24

    def test_str_stable_across_repeated_calls(self):
        p = Prefix(0x0A020000, 16)
        first = str(p)
        assert str(p) is first  # memoized on the instance
        assert first == "10.2.0.0/16"

    def test_constructed_and_parsed_agree(self):
        constructed = Prefix(0xC0A80100, 24)
        parsed = Prefix.parse("192.168.1.0/24")
        assert constructed == parsed
        assert str(constructed) == str(parsed)

    def test_sort_key_matches_comparison_order(self):
        ps = [Prefix.parse(t) for t in
              ("10.0.0.0/8", "10.0.0.0/16", "9.0.0.0/8", "10.0.1.0/24")]
        assert sorted(ps) == sorted(ps, key=lambda p: p.sort_key)
