"""Unit tests for repro.eventsim.event."""

import pytest

from repro.eventsim.event import Event, EventHandle


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, lambda: None)

    def test_non_callable_action_rejected(self):
        with pytest.raises(TypeError):
            Event(0.0, "not-callable")

    def test_time_coerced_to_float(self):
        event = Event(3, lambda: None)
        assert event.time == 3.0
        assert isinstance(event.time, float)

    def test_sort_key_requires_scheduling(self):
        event = Event(1.0, lambda: None)
        with pytest.raises(RuntimeError):
            event.sort_key()

    def test_sort_key_after_scheduling(self):
        event = Event(1.0, lambda: None, priority=2)
        event.seq = 5
        assert event.sort_key() == (1.0, 2, 5)

    def test_fire_runs_action(self):
        hits = []
        event = Event(0.0, lambda: hits.append(1))
        event.fire()
        assert hits == [1]

    def test_fire_returns_action_result(self):
        event = Event(0.0, lambda: 42)
        assert event.fire() == 42

    def test_cancelled_event_does_not_fire(self):
        hits = []
        event = Event(0.0, lambda: hits.append(1))
        event.cancel()
        assert event.fire() is None
        assert hits == []


class TestEventHandle:
    def test_handle_exposes_time(self):
        event = Event(2.5, lambda: None)
        handle = EventHandle(event)
        assert handle.time == 2.5

    def test_handle_cancel_propagates(self):
        event = Event(0.0, lambda: None)
        handle = EventHandle(event)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        assert event.cancelled
