"""Integration tests for the network assembly layer."""

import pytest

from repro.bgp.network import Network
from repro.bgp.policy import GaoRexfordPolicy, PeerRelation
from repro.bgp.speaker import SpeakerConfig
from repro.net.addresses import Prefix
from repro.topology import ASGraph
from repro.topology.generators import generate_paper_topology

P = Prefix.parse("10.0.0.0/16")


class TestAssembly:
    def test_speaker_per_as(self, diamond_graph):
        net = Network(diamond_graph)
        assert set(net.speakers) == {1, 2, 3, 4}

    def test_link_per_edge(self, diamond_graph):
        net = Network(diamond_graph)
        assert len(net.links) == diamond_graph.num_links()
        assert net.link(1, 2) is net.link(2, 1)

    def test_unknown_speaker_lookup(self, diamond_graph):
        net = Network(diamond_graph)
        with pytest.raises(KeyError):
            net.speaker(99)
        with pytest.raises(KeyError):
            net.link(1, 99)

    def test_establish_sessions(self, diamond_graph):
        net = Network(diamond_graph)
        net.establish_sessions()
        for a, b in diamond_graph.edges():
            assert net.speaker(a).sessions[b].established


class TestConvergence:
    def test_route_reaches_every_as(self, diamond_network):
        diamond_network.originate(1, P)
        diamond_network.run_to_convergence()
        origins = diamond_network.best_origins(P)
        assert all(origin == 1 for origin in origins.values())

    def test_paths_are_shortest(self, chain_graph):
        net = Network(chain_graph)
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        for asn in (2, 3, 4, 5):
            best = net.speaker(asn).best_route(P)
            assert best.attributes.as_path.length == asn - 1

    def test_convergence_on_generated_topology(self):
        graph = generate_paper_topology(25, seed=3)
        net = Network(graph)
        net.establish_sessions()
        origin = graph.stub_asns()[0]
        net.originate(origin, P)
        net.run_to_convergence()
        origins = net.best_origins(P)
        assert all(value == origin for value in origins.values())

    def test_ases_preferring_origin(self, diamond_network):
        diamond_network.originate(1, P)
        diamond_network.run_to_convergence()
        assert diamond_network.ases_preferring_origin(P, [1]) == [1, 2, 3, 4]
        assert diamond_network.ases_preferring_origin(P, [9]) == []


class TestFailureRecovery:
    def test_reroute_after_link_failure(self, diamond_graph):
        # Hold time > 0 so the dead session is detected and torn down.
        net = Network(diamond_graph, config=SpeakerConfig(hold_time=3.0))
        net.establish_sessions()
        net.originate(1, P)
        net.run_for(5.0)
        before = net.speaker(4).best_route(P)
        first_hop_before = before.peer

        net.link(4, first_hop_before).fail()
        net.run_for(30.0)
        after = net.speaker(4).best_route(P)
        assert after is not None
        assert after.peer != first_hop_before
        assert after.origin_asn == 1

    def test_no_route_when_partitioned(self, chain_graph):
        net = Network(chain_graph, config=SpeakerConfig(hold_time=3.0))
        net.establish_sessions()
        net.originate(1, P)
        net.run_for(5.0)
        net.link(2, 3).fail()
        net.run_for(30.0)
        assert net.speaker(4).best_route(P) is None
        assert net.speaker(2).best_route(P) is not None


class TestPolicyFactory:
    def test_gao_rexford_valley_free(self):
        # 1 is customer of 2; 2 and 3 are peers; 3 is provider of 4.
        # A route from 1 goes up to 2, across to 3, down to 4 (valley-free),
        # but a route originated by 2 must NOT transit the 2-3 peer link and
        # then another peer/provider edge.
        graph = ASGraph.from_edges([(1, 2), (2, 3), (3, 4)], transit=[2, 3])
        relations = {
            1: {2: PeerRelation.PROVIDER},
            2: {1: PeerRelation.CUSTOMER, 3: PeerRelation.PEER},
            3: {2: PeerRelation.PEER, 4: PeerRelation.CUSTOMER},
            4: {3: PeerRelation.PROVIDER},
        }
        net = Network(
            graph, policy_factory=lambda asn: GaoRexfordPolicy(relations[asn])
        )
        net.establish_sessions()
        net.originate(1, P)
        net.run_to_convergence()
        # Customer route is exported everywhere: all ASes reach it.
        assert all(v == 1 for v in net.best_origins(P).values())

        p2 = Prefix.parse("11.0.0.0/16")
        net.originate(3, p2)
        net.run_to_convergence()
        # 3's own route goes to its peer 2 and customer 4; 2 (peer-learned)
        # passes it down to customer 1 but never back up.
        assert net.best_origins(p2) == {1: 3, 2: 3, 3: 3, 4: 3}

        p3 = Prefix.parse("12.0.0.0/16")
        net.originate(4, p3)
        net.run_to_convergence()
        # 4 -> 3 (provider) -> 2 (peer, allowed: customer route) -> 1.
        assert all(v == 4 for v in net.best_origins(p3).values())


class TestCounters:
    def test_update_counting(self, diamond_network):
        diamond_network.originate(1, P)
        diamond_network.run_to_convergence()
        assert diamond_network.total_updates_sent() > 0
