"""Crash-injection tests for the checkpoint chain and alarm log.

The matrix kills the writer at every durability fault point — before an
fsync, after an fsync but before the atomic rename, mid-delta-append,
between the alarm flush and its chain record, and during the resume-time
log truncation — and proves the service either replays cleanly to a
bit-identical alarm log or refuses with :class:`CheckpointError`.  Never a
silent divergence.

In-process cases drive the synchronous writer (``async_io=False``) with a
raising hook; subprocess cases use ``REPRO_STREAM_FAULT`` to hard-exit the
real CLI process (``os._exit``, no flushing, no handlers) and then resume.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys

import pytest

from repro.measurement.trace import FaultSpike, TraceConfig, TraceGenerator
from repro.stream.checkpoint import CheckpointError, delta_path_for
from repro.stream.feed import FeedWriter, snapshot_deltas
from repro.stream.service import FAULT_EXIT_CODE, StreamService

TRACE_CONFIG = TraceConfig(
    days=40,
    faults=(FaultSpike(day=10, faulty_as=8584, n_prefixes=30),),
    n_background_prefixes=200,
    include_background=True,
)

#: (fault point, which occurrence to crash on).  Chain points need the
#: second full so compaction paths (delta-file reset) are live; delta and
#: alarm points fire once a base snapshot exists.
RUN_FAULT_MATRIX = [
    ("full-pre-fsync", 2),
    ("full-pre-reset", 2),
    ("full-pre-reset-replace", 2),
    ("full-pre-replace", 2),
    ("full-pre-dirsync", 2),
    ("delta-pre-append", 1),
    ("delta-mid-append", 1),
    ("delta-pre-fsync", 1),
    ("delta-post-fsync", 1),
    ("alarm-pre-append", 1),
    ("alarm-pre-fsync", 1),
    ("alarm-post-fsync", 1),
]

RESUME_FAULT_MATRIX = [("truncate-pre", 1), ("truncate-post", 1)]


class InjectedCrash(BaseException):
    """Deliberately not an Exception: nothing may swallow a crash."""


def raising_hook(point, nth=1):
    remaining = [nth]

    def hook(name):
        if name != point:
            return
        remaining[0] -= 1
        if remaining[0] <= 0:
            raise InjectedCrash(point)

    return hook


def write_trace_feed(path, seed=7):
    generator = TraceGenerator(TRACE_CONFIG, random.Random(seed))
    with FeedWriter(path) as writer:
        return writer.write_all(snapshot_deltas(generator.snapshots()))


SERVICE_KWARGS = dict(checkpoint_every=120, full_every=4, async_io=False)


@pytest.fixture(scope="module")
def trace_feed(tmp_path_factory):
    root = tmp_path_factory.mktemp("faultfeed")
    feed = root / "feed.jsonl"
    write_trace_feed(feed)
    expected = root / "alarms_full.jsonl"
    StreamService(feed, expected, root / "cp_full.json", **SERVICE_KWARGS).run()
    return feed, expected.read_bytes()


class TestRunFaultMatrix:
    @pytest.mark.parametrize("point,nth", RUN_FAULT_MATRIX)
    def test_crash_then_resume_is_bit_identical(
        self, tmp_path, trace_feed, point, nth
    ):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        crashed = StreamService(
            feed, alarms, cp, fault=raising_hook(point, nth), **SERVICE_KWARGS
        )
        with pytest.raises(InjectedCrash):
            crashed.run()
        # The crash left a loadable chain (possibly older than the crash
        # point, never diverged); resume finishes the stream exactly.
        resumed = StreamService(feed, alarms, cp, **SERVICE_KWARGS)
        summary = resumed.run(resume=True)
        assert summary.eof is True
        assert alarms.read_bytes() == expected
        # The resumed run swept any temp file the crash stranded.
        assert list(tmp_path.glob("*.tmp")) == []

    @pytest.mark.parametrize("point,nth", RUN_FAULT_MATRIX)
    def test_double_crash_then_resume(self, tmp_path, trace_feed, point, nth):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                **SERVICE_KWARGS,
            ).run()
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                **SERVICE_KWARGS,
            ).run(resume=True)
        summary = StreamService(feed, alarms, cp, **SERVICE_KWARGS).run(
            resume=True
        )
        assert summary.eof is True
        assert alarms.read_bytes() == expected


class TestResumeFaultMatrix:
    @pytest.mark.parametrize("point,nth", RESUME_FAULT_MATRIX)
    def test_crash_during_resume_truncation(
        self, tmp_path, trace_feed, point, nth
    ):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(
            feed, alarms, cp, max_records=2000, **SERVICE_KWARGS
        ).run()
        # Orphan bytes past the checkpoint: flushed but never accounted.
        with alarms.open("a") as handle:
            handle.write('{"orphan": "line"}\n')
        with pytest.raises(InjectedCrash):
            StreamService(
                feed, alarms, cp, fault=raising_hook(point, nth),
                **SERVICE_KWARGS,
            ).run(resume=True)
        # The truncation is one atomic syscall: dying right before or right
        # after it leaves a log a second resume still rolls back exactly.
        summary = StreamService(feed, alarms, cp, **SERVICE_KWARGS).run(
            resume=True
        )
        assert summary.eof is True
        assert alarms.read_bytes() == expected


class TestRefusalPaths:
    def test_corrupt_delta_line_refuses_resume(self, tmp_path, trace_feed):
        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        # With batch 256 the boundaries fall per batch: nine in-loop (the
        # ninth a compacting full at 2200) plus a final delta — so the stop
        # leaves a non-empty delta chain to corrupt.
        StreamService(feed, alarms, cp, max_records=2200, **SERVICE_KWARGS).run()
        deltas = delta_path_for(cp)
        raw = deltas.read_bytes().splitlines(keepends=True)
        assert raw, "interrupted run should have left a delta chain"
        corrupt = raw[0][: len(raw[0]) // 2] + b'garbage"}\n'
        deltas.write_bytes(corrupt + b"".join(raw[1:]))
        with pytest.raises(CheckpointError):
            StreamService(feed, alarms, cp, **SERVICE_KWARGS).run(resume=True)

    def test_shrunken_alarm_log_refuses_resume(self, tmp_path, trace_feed):
        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(feed, alarms, cp, max_records=3000, **SERVICE_KWARGS).run()
        durable = alarms.read_bytes()
        assert durable, "trace fault spike should have produced alarms"
        alarms.write_bytes(durable[: len(durable) // 2])
        with pytest.raises(CheckpointError, match="bytes"):
            StreamService(feed, alarms, cp, **SERVICE_KWARGS).run(resume=True)

    def test_misaligned_alarm_log_refuses_truncate(self, tmp_path, trace_feed):
        feed, _ = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        StreamService(feed, alarms, cp, max_records=3000, **SERVICE_KWARGS).run()
        durable = alarms.read_bytes()
        assert durable.endswith(b"\n")
        # Strip the recorded boundary's newline: byte accounting no longer
        # lands on a line end, which must refuse rather than corrupt.
        alarms.write_bytes(durable[:-1] + b"X" + durable[-1:])
        with pytest.raises(CheckpointError, match="refusing to truncate"):
            StreamService(feed, alarms, cp, **SERVICE_KWARGS).run(resume=True)


class TestSubprocessCrash:
    """The real thing: ``os._exit`` mid-write in a separate process."""

    SUBPROCESS_POINTS = [
        ("full-pre-fsync", 2),
        ("full-pre-replace", 2),
        ("delta-mid-append", 1),
        ("alarm-post-fsync", 1),
    ]

    def run_cli(self, feed, alarms, cp, *extra, env_fault=None, timeout=120):
        env = dict(os.environ, PYTHONPATH="src")
        env.pop("REPRO_STREAM_FAULT", None)
        if env_fault is not None:
            env["REPRO_STREAM_FAULT"] = env_fault
        cmd = [
            sys.executable, "-m", "repro", "stream", "run", str(feed),
            "--alarms", str(alarms), "--checkpoint", str(cp),
            "--checkpoint-every", "120", "--full-every", "4", *extra,
        ]
        return subprocess.run(
            cmd, env=env, capture_output=True, text=True, timeout=timeout
        )

    @pytest.mark.parametrize("point,nth", SUBPROCESS_POINTS)
    def test_hard_exit_then_resume(self, tmp_path, trace_feed, point, nth):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        crashed = self.run_cli(
            feed, alarms, cp, env_fault=f"{point}:{nth}"
        )
        assert crashed.returncode == FAULT_EXIT_CODE, crashed.stderr
        done = self.run_cli(feed, alarms, cp, "--resume")
        assert done.returncode == 0, done.stderr
        assert alarms.read_bytes() == expected
        assert list(tmp_path.glob("*.tmp")) == []

    def test_hard_exit_during_resume_truncation(self, tmp_path, trace_feed):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        first = self.run_cli(feed, alarms, cp, "--max-records", "2000")
        assert first.returncode == 0, first.stderr
        with alarms.open("a") as handle:
            handle.write('{"orphan": "line"}\n')
        crashed = self.run_cli(
            feed, alarms, cp, "--resume", env_fault="truncate-pre"
        )
        assert crashed.returncode == FAULT_EXIT_CODE, crashed.stderr
        done = self.run_cli(feed, alarms, cp, "--resume")
        assert done.returncode == 0, done.stderr
        assert alarms.read_bytes() == expected

    def test_stale_tmp_reaped_on_start(self, tmp_path, trace_feed):
        feed, expected = trace_feed
        alarms = tmp_path / "alarms.jsonl"
        cp = tmp_path / "cp.json"
        (tmp_path / "cp.json.tmp").write_text("stranded by a crash")
        (tmp_path / "cp.json.deltas.tmp").write_text("stranded by a crash")
        done = self.run_cli(feed, alarms, cp)
        assert done.returncode == 0, done.stderr
        assert alarms.read_bytes() == expected
        assert list(tmp_path.glob("*.tmp")) == []
