"""Unit tests for synthetic topology generation."""

import random

import pytest

from repro.topology import ASRole
from repro.topology.generators import (
    InternetTopologyConfig,
    config_for_size,
    generate_internet_like,
    generate_paper_topology,
)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_transit": 1},
            {"tier1_clique": 1},
            {"tier1_clique": 1000},
            {"transit_attach_min": 0},
            {"transit_attach_min": 5, "transit_attach_max": 2},
            {"stub_single_homed_fraction": 1.5},
            {"stub_max_providers": 0},
            {"n_stub": -1},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            InternetTopologyConfig(**kwargs).validate()

    def test_overlapping_asn_ranges_rejected(self):
        config = InternetTopologyConfig(
            n_transit=10, first_transit_asn=1, n_stub=10, first_stub_asn=5
        )
        with pytest.raises(ValueError):
            generate_internet_like(config, random.Random(0))


class TestInternetLike:
    def setup_method(self):
        self.config = InternetTopologyConfig(n_transit=30, n_stub=200)
        self.graph = generate_internet_like(self.config, random.Random(0))

    def test_connected(self):
        assert self.graph.is_connected()

    def test_node_count(self):
        assert len(self.graph) == 230

    def test_role_split(self):
        assert len(self.graph.transit_asns()) == 30
        assert len(self.graph.stub_asns()) == 200

    def test_stubs_attach_only_to_transit(self):
        for stub in self.graph.stub_asns():
            for neighbor in self.graph.neighbors(stub):
                assert self.graph.role(neighbor) is ASRole.TRANSIT

    def test_tier1_clique_meshed(self):
        core = self.graph.transit_asns()[: self.config.tier1_clique]
        for i, a in enumerate(core):
            for b in core[i + 1:]:
                assert self.graph.has_link(a, b)

    def test_stub_provider_counts_within_bounds(self):
        for stub in self.graph.stub_asns():
            assert 1 <= self.graph.degree(stub) <= self.config.stub_max_providers

    def test_deterministic(self):
        again = generate_internet_like(self.config, random.Random(0))
        assert again.edges() == self.graph.edges()

    def test_heavy_tail(self):
        """Preferential attachment must concentrate degree: the busiest
        transit AS should carry several times the median degree."""
        degrees = sorted(self.graph.degree(a) for a in self.graph.transit_asns())
        median = degrees[len(degrees) // 2]
        assert degrees[-1] >= 3 * median


class TestPaperTopology:
    @pytest.mark.parametrize("size", [25, 46, 63])
    def test_exact_size_and_connected(self, size):
        graph = generate_paper_topology(size, seed=7)
        assert len(graph) == size
        assert graph.is_connected()

    def test_has_both_roles(self):
        graph = generate_paper_topology(46, seed=7)
        assert graph.transit_asns()
        assert graph.stub_asns()

    def test_transit_pruning_invariant(self):
        graph = generate_paper_topology(46, seed=7)
        for asn in graph.transit_asns():
            assert graph.degree(asn) >= 2

    def test_deterministic(self):
        a = generate_paper_topology(25, seed=5)
        b = generate_paper_topology(25, seed=5)
        assert a.edges() == b.edges()

    def test_seed_variation(self):
        a = generate_paper_topology(25, seed=1)
        b = generate_paper_topology(25, seed=2)
        assert a.edges() != b.edges()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_paper_topology(3)

    def test_size_scaled_richness(self):
        """config_for_size encodes Figure 8's character: small samples are
        sparser than large ones."""
        small = config_for_size(25)
        large = config_for_size(63)
        assert small.stub_single_homed_fraction > large.stub_single_homed_fraction
        assert small.stub_max_providers <= large.stub_max_providers
        assert small.tier1_clique <= large.tier1_clique
