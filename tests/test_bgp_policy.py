"""Unit tests for routing policy."""

import pytest

from repro.bgp.attributes import AsPath, Community, PathAttributes
from repro.bgp.policy import (
    AcceptAllPolicy,
    CommunityStripPolicy,
    GaoRexfordPolicy,
    PeerRelation,
    Policy,
    PolicyChain,
    PolicyVerdict,
    PrefixFilterPolicy,
)
from repro.bgp.errors import PolicyError
from repro.net.addresses import Prefix

P = Prefix.parse("10.0.0.0/8")
SUB = Prefix.parse("10.2.0.0/16")
OTHER = Prefix.parse("192.0.2.0/24")
ATTRS = PathAttributes(as_path=AsPath.from_asns([5]))


class TestVerdict:
    def test_accept_requires_attributes(self):
        with pytest.raises(PolicyError):
            PolicyVerdict(True, None)

    def test_reject_carries_no_attributes(self):
        v = PolicyVerdict.reject()
        assert not v.accepted
        assert v.attributes is None


class TestAcceptAll:
    def test_passthrough(self):
        policy = AcceptAllPolicy()
        assert policy.apply_import(1, P, ATTRS).attributes is ATTRS
        assert policy.apply_export(1, P, ATTRS).attributes is ATTRS


class TestPrefixFilter:
    def test_deny_listed(self):
        policy = PrefixFilterPolicy([P], mode="deny")
        assert not policy.apply_import(1, P, ATTRS).accepted
        assert policy.apply_import(1, OTHER, ATTRS).accepted

    def test_allow_only_listed(self):
        policy = PrefixFilterPolicy([P], mode="allow")
        assert policy.apply_import(1, P, ATTRS).accepted
        assert not policy.apply_import(1, OTHER, ATTRS).accepted

    def test_match_specifics(self):
        policy = PrefixFilterPolicy([P], mode="deny", match_specifics=True)
        assert not policy.apply_import(1, SUB, ATTRS).accepted

    def test_no_specifics_by_default(self):
        policy = PrefixFilterPolicy([P], mode="deny")
        assert policy.apply_import(1, SUB, ATTRS).accepted

    def test_direction_import_only(self):
        policy = PrefixFilterPolicy([P], mode="deny", direction="import")
        assert not policy.apply_import(1, P, ATTRS).accepted
        assert policy.apply_export(1, P, ATTRS).accepted

    def test_direction_export_only(self):
        policy = PrefixFilterPolicy([P], mode="deny", direction="export")
        assert policy.apply_import(1, P, ATTRS).accepted
        assert not policy.apply_export(1, P, ATTRS).accepted

    def test_bad_mode_rejected(self):
        with pytest.raises(PolicyError):
            PrefixFilterPolicy([P], mode="nonsense")

    def test_bad_direction_rejected(self):
        with pytest.raises(PolicyError):
            PrefixFilterPolicy([P], direction="sideways")


class TestChain:
    def test_first_rejection_wins(self):
        chain = PolicyChain([PrefixFilterPolicy([P], mode="deny"), AcceptAllPolicy()])
        assert not chain.apply_import(1, P, ATTRS).accepted

    def test_attribute_changes_accumulate(self):
        class AddMed(Policy):
            def apply_import(self, peer, prefix, attributes):
                return PolicyVerdict.accept(attributes.replace(med=attributes.med + 1))

        chain = PolicyChain([AddMed(), AddMed()])
        out = chain.apply_import(1, P, ATTRS)
        assert out.attributes.med == 2

    def test_export_chain(self):
        chain = PolicyChain([CommunityStripPolicy()])
        attrs = ATTRS.add_communities([Community(1, 2)])
        assert chain.apply_export(1, P, attrs).attributes.communities == frozenset()


class TestGaoRexford:
    def setup_method(self):
        self.policy = GaoRexfordPolicy(
            {
                10: PeerRelation.CUSTOMER,
                20: PeerRelation.PEER,
                30: PeerRelation.PROVIDER,
            }
        )

    def test_import_sets_local_pref(self):
        assert self.policy.apply_import(10, P, ATTRS).attributes.local_pref == 200
        assert self.policy.apply_import(20, P, ATTRS).attributes.local_pref == 150
        assert self.policy.apply_import(30, P, ATTRS).attributes.local_pref == 100

    def test_customer_routes_export_everywhere(self):
        imported = self.policy.apply_import(10, P, ATTRS).attributes
        for peer in (10, 20, 30):
            assert self.policy.apply_export(peer, P, imported).accepted

    def test_peer_routes_export_to_customers_only(self):
        imported = self.policy.apply_import(20, P, ATTRS).attributes
        assert self.policy.apply_export(10, P, imported).accepted
        assert not self.policy.apply_export(20, P, imported).accepted
        assert not self.policy.apply_export(30, P, imported).accepted

    def test_provider_routes_export_to_customers_only(self):
        imported = self.policy.apply_import(30, P, ATTRS).attributes
        assert self.policy.apply_export(10, P, imported).accepted
        assert not self.policy.apply_export(30, P, imported).accepted

    def test_locally_originated_exports_everywhere(self):
        local = PathAttributes()
        for peer in (10, 20, 30):
            assert self.policy.apply_export(peer, P, local).accepted

    def test_unknown_peer_rejected(self):
        with pytest.raises(PolicyError):
            self.policy.apply_import(99, P, ATTRS)


class TestCommunityStrip:
    def test_strips_on_export(self):
        policy = CommunityStripPolicy()
        attrs = ATTRS.add_communities([Community(1, 255)])
        assert policy.apply_export(1, P, attrs).attributes.communities == frozenset()

    def test_import_untouched(self):
        policy = CommunityStripPolicy()
        attrs = ATTRS.add_communities([Community(1, 255)])
        assert policy.apply_import(1, P, attrs).attributes.communities
