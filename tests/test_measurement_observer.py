"""Unit tests for the MOAS observer."""

import pytest

from repro.bgp.attributes import AsPath
from repro.measurement.moas_observer import MoasCase, MoasObserver
from repro.net.addresses import Prefix
from repro.topology.routeviews import RouteViewsTable

P = Prefix.parse("10.0.0.0/16")
Q = Prefix.parse("192.0.2.0/24")


class TestMoasCase:
    def test_requires_two_origins(self):
        with pytest.raises(ValueError):
            MoasCase(day=0, prefix=P, origins=frozenset({1}))

    def test_origin_count(self):
        case = MoasCase(day=0, prefix=P, origins=frozenset({1, 2, 3}))
        assert case.origin_count == 3


class TestObserver:
    def test_detects_multi_origin_prefixes_only(self):
        observer = MoasObserver()
        cases = observer.observe_snapshot(
            0, {P: frozenset({1, 2}), Q: frozenset({3})}
        )
        assert len(cases) == 1
        assert cases[0].prefix == P

    def test_daily_counts(self):
        observer = MoasObserver()
        observer.observe_snapshot(0, {P: frozenset({1, 2})})
        observer.observe_snapshot(1, {P: frozenset({1, 2}), Q: frozenset({1, 9})})
        assert observer.daily_series() == [1, 2]
        assert observer.days_observed() == 2

    def test_duplicate_day_rejected(self):
        observer = MoasObserver()
        observer.observe_snapshot(0, {})
        with pytest.raises(ValueError):
            observer.observe_snapshot(0, {})

    def test_days_need_not_be_sequential(self):
        observer = MoasObserver()
        observer.observe_snapshot(5, {P: frozenset({1, 2})})
        observer.observe_snapshot(2, {})
        assert observer.daily_series() == [0, 1]  # ordered by day

    def test_distinct_prefixes(self):
        observer = MoasObserver()
        observer.observe_snapshot(0, {P: frozenset({1, 2})})
        observer.observe_snapshot(1, {P: frozenset({1, 3})})
        assert observer.distinct_prefixes() == 1

    def test_origin_count_distribution_dedups_same_origin_set(self):
        observer = MoasObserver()
        observer.observe_snapshot(0, {P: frozenset({1, 2})})
        observer.observe_snapshot(1, {P: frozenset({1, 2})})  # same case
        observer.observe_snapshot(2, {P: frozenset({1, 2, 3})})  # new set
        dist = observer.origin_count_distribution()
        assert dist == {2: 1, 3: 1}

    def test_observe_table(self):
        table = RouteViewsTable(date="d")
        table.add(P, 7, AsPath.from_asns([7, 1]))
        table.add(P, 8, AsPath.from_asns([8, 2]))
        observer = MoasObserver()
        cases = observer.observe_table(0, table)
        assert cases[0].origins == frozenset({1, 2})

    def test_cases_accumulate_in_order(self):
        observer = MoasObserver()
        observer.observe_snapshot(0, {P: frozenset({1, 2}), Q: frozenset({3, 4})})
        assert [str(c.prefix) for c in observer.cases] == [
            "10.0.0.0/16",
            "192.0.2.0/24",
        ]
