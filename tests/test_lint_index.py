"""The incremental lint index: caching, invalidation, self-heal, speed."""

import time
from pathlib import Path

import pytest

from repro.lint import LintConfig
from repro.lint.driver import run_lint
from repro.lint.index import (
    IndexCache,
    ModuleSummary,
    build_summary,
    config_digest,
    module_name_for,
)

SRC_ROOT = Path(__file__).parent.parent / "src" / "repro"

BAD = "import random\n\ndef roll():\n    return random.random()\n"
CLEAN = "def roll():\n    return 4\n"


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content, encoding="utf-8")
    return path


class TestModuleNames:
    def test_src_rooted(self):
        assert module_name_for("/x/src/repro/core/checker.py") == "repro.core.checker"

    def test_package_init(self):
        assert module_name_for("/x/src/repro/lint/__init__.py") == "repro.lint"

    def test_fixture_fallback(self):
        assert module_name_for("/tmp/fixtures/r100_bad.py") == "r100_bad"


class TestCacheRoundTrip:
    def test_cold_then_warm(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD)
        cache_dir = tmp_path / "cache"

        first = run_lint([target], cache_dir=cache_dir, use_cache=True)
        assert first.cache_misses == 1 and first.cache_hits == 0
        assert {v.rule for v in first.violations} == {"R001"}

        second = run_lint([target], cache_dir=cache_dir, use_cache=True)
        assert second.cache_hits == 1 and second.cache_misses == 0
        assert second.violations == first.violations

    def test_content_change_invalidates(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD)
        cache_dir = tmp_path / "cache"
        run_lint([target], cache_dir=cache_dir, use_cache=True)

        target.write_text(CLEAN, encoding="utf-8")
        after = run_lint([target], cache_dir=cache_dir, use_cache=True)
        assert after.cache_misses == 1 and after.cache_hits == 0
        assert after.violations == []

    def test_select_does_not_invalidate(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD)
        cache_dir = tmp_path / "cache"
        run_lint([target], cache_dir=cache_dir, use_cache=True)

        narrowed = run_lint(
            [target],
            config=LintConfig(select=frozenset({"R002"})),
            cache_dir=cache_dir,
            use_cache=True,
        )
        assert narrowed.cache_hits == 1  # summaries are select-independent
        assert narrowed.violations == []  # R001 filtered at report time

    def test_config_digest_ignores_select(self):
        wide = LintConfig()
        narrow = LintConfig(select=frozenset({"R002"}))
        assert config_digest(wide) == config_digest(narrow)

    def test_extraction_config_changes_digest(self):
        assert config_digest(LintConfig()) != config_digest(
            LintConfig(taint_sink_methods=("schedule_at",))
        )


class TestCacheSelfHeal:
    def entry_paths(self, cache_dir):
        return sorted(cache_dir.glob("*.pkl"))

    def test_corrupted_entry_is_discarded_and_rebuilt(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD)
        cache_dir = tmp_path / "cache"
        run_lint([target], cache_dir=cache_dir, use_cache=True)
        entries = self.entry_paths(cache_dir)
        assert len(entries) == 1
        entries[0].write_bytes(b"\x00corrupt\xff")

        healed = run_lint([target], cache_dir=cache_dir, use_cache=True)
        assert healed.cache_misses == 1 and healed.cache_hits == 0
        assert {v.rule for v in healed.violations} == {"R001"}
        # Rebuilt: the next run hits again.
        assert run_lint([target], cache_dir=cache_dir, use_cache=True).cache_hits == 1

    def test_foreign_pickle_is_rejected(self, tmp_path):
        import pickle

        target = write(tmp_path, "mod.py", CLEAN)
        cache_dir = tmp_path / "cache"
        run_lint([target], cache_dir=cache_dir, use_cache=True)
        entries = self.entry_paths(cache_dir)
        entries[0].write_bytes(pickle.dumps({"not": "a summary"}))

        healed = run_lint([target], cache_dir=cache_dir, use_cache=True)
        assert healed.cache_misses == 1
        assert healed.violations == []

    def test_unwritable_cache_degrades_to_cold(self, tmp_path):
        target = write(tmp_path, "mod.py", BAD)
        blocker = tmp_path / "cache"
        blocker.write_text("a file where the cache dir should be", "utf-8")
        run = run_lint([target], cache_dir=blocker, use_cache=True)
        assert {v.rule for v in run.violations} == {"R001"}


class TestDirectStore:
    def test_store_load_round_trip(self, tmp_path):
        summary = build_summary("/x/src/repro/m.py", CLEAN, LintConfig())
        assert isinstance(summary, ModuleSummary)
        cache = IndexCache(tmp_path / "cache")
        cache.store("k" * 64, summary)
        loaded = cache.load("k" * 64)
        assert loaded == summary


class TestWarmSpeed:
    def test_warm_lint_is_5x_faster_than_cold(self, tmp_path):
        """Acceptance: a warm no-change lint of src/repro is >=5x faster."""
        cache_dir = tmp_path / "cache"

        started = time.perf_counter()
        cold = run_lint([SRC_ROOT], cache_dir=cache_dir, use_cache=True)
        cold_seconds = time.perf_counter() - started
        assert cold.cache_hits == 0 and cold.cache_misses == cold.files

        started = time.perf_counter()
        warm = run_lint([SRC_ROOT], cache_dir=cache_dir, use_cache=True)
        warm_seconds = time.perf_counter() - started
        assert warm.cache_hits == warm.files and warm.cache_misses == 0
        assert warm.violations == cold.violations

        assert warm_seconds * 5 <= cold_seconds, (
            f"warm lint {warm_seconds:.3f}s is not >=5x faster than "
            f"cold {cold_seconds:.3f}s"
        )


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
