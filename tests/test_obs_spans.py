"""Unit tests for the phase-tracing spans."""

import json

import pytest

from repro.obs.spans import SpanTracer


class FakeClock:
    """A settable sim clock, so sim-time assertions are exact."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanRecording:
    def test_single_span_records_sim_times(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("convergence"):
            clock.now = 30.0
        (root,) = tracer.roots()
        assert root.name == "convergence"
        assert root.sim_start == 0.0
        assert root.sim_end == 30.0
        assert root.sim_seconds == 30.0
        assert root.finished

    def test_wall_seconds_measured(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            pass
        (root,) = tracer.roots()
        assert root.wall_seconds >= 0.0

    def test_without_clock_sim_times_are_zero(self):
        tracer = SpanTracer()
        with tracer.span("phase"):
            pass
        (root,) = tracer.roots()
        assert root.sim_start == 0.0
        assert root.sim_end == 0.0
        assert root.sim_seconds == 0.0

    def test_nesting_builds_a_tree(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer"):
            with tracer.span("first"):
                clock.now = 1.0
            with tracer.span("second"):
                clock.now = 3.0
        (outer,) = tracer.roots()
        assert [child.name for child in outer.children] == ["first", "second"]
        assert outer.sim_seconds == 3.0
        assert outer.children[1].sim_start == 1.0

    def test_sequential_roots_form_a_forest(self):
        tracer = SpanTracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [root.name for root in tracer.roots()] == ["a", "b"]

    def test_unfinished_span_reports_zero_sim_seconds(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        context = tracer.span("open")
        clock.now = 9.0
        assert not context.__enter__().finished
        assert tracer.find("open").sim_seconds == 0.0


class TestOrdering:
    def test_out_of_order_close_raises(self):
        tracer = SpanTracer()
        outer = tracer.span("outer")
        tracer.span("inner")
        with pytest.raises(RuntimeError, match="closed out of order"):
            outer.__exit__(None, None, None)

    def test_open_spans_listed_innermost_last(self):
        tracer = SpanTracer()
        tracer.span("a")
        tracer.span("b")
        assert tracer.open_spans == ["a", "b"]

    def test_exception_inside_span_still_closes_it(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.open_spans == []
        assert tracer.find("doomed").finished


class TestTraversal:
    def _example(self):
        tracer = SpanTracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        return tracer

    def test_walk_is_depth_first(self):
        tracer = self._example()
        assert [span.name for span in tracer.walk()] == [
            "root", "child", "grandchild",
        ]
        assert len(tracer) == 3

    def test_find(self):
        tracer = self._example()
        assert tracer.find("grandchild").name == "grandchild"
        assert tracer.find("missing") is None


class TestDumping:
    def test_as_dicts_shape(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("root"):
            with tracer.span("child"):
                clock.now = 2.0
        (root,) = tracer.as_dicts()
        assert set(root) == {
            "name", "sim_start", "sim_end", "sim_seconds",
            "wall_seconds", "children",
        }
        assert root["sim_seconds"] == 2.0
        assert root["children"][0]["name"] == "child"
        assert root["children"][0]["children"] == []

    def test_as_dicts_refuses_open_spans(self):
        tracer = SpanTracer()
        tracer.span("still-open")
        with pytest.raises(RuntimeError, match="still-open"):
            tracer.as_dicts()

    def test_to_json_parses(self):
        tracer = SpanTracer()
        with tracer.span("phase"):
            pass
        dumped = json.loads(tracer.to_json())
        assert dumped[0]["name"] == "phase"
