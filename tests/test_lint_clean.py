"""Meta-test: the shipped source tree must satisfy its own linter.

This is the enforcement half of the determinism discipline — CI runs
``python -m repro.lint src/repro`` too, but this test keeps the guarantee
inside the tier-1 suite so a violation fails fast locally.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import LintConfig, format_text, lint_paths, snapshot_coverage
from repro.lint.driver import build_index
from repro.lint.rules import iter_python_files

SRC_ROOT = Path(repro.__file__).parent

#: Every class in the tree implementing the snapshot/restore protocol.  New
#: protocol classes must be added here — the enumeration test below fails
#: otherwise, which is the point: snapshot coverage is opt-out, not silent.
EXPECTED_SNAPSHOT_CLASSES = {
    "repro.bgp.damping.RouteFlapDamper",
    "repro.bgp.network.Network",
    "repro.bgp.shardnet.BoundaryLink",
    "repro.bgp.shardnet.ShardNetwork",
    "repro.bgp.rib.AdjRibIn",
    "repro.bgp.rib.AdjRibOut",
    "repro.bgp.rib.LocRib",
    "repro.bgp.session.Session",
    "repro.bgp.speaker.BGPSpeaker",
    "repro.core.alarms.AlarmLog",
    "repro.core.checker.MoasChecker",
    "repro.eventsim.rng.RandomStreams",
    "repro.eventsim.simulator.Simulator",
    "repro.net.link.Link",
    "repro.stream.engine.StreamEngine",
}


def test_src_repro_is_lint_clean():
    violations = lint_paths([SRC_ROOT])
    assert violations == [], "\n" + format_text(violations)


def test_src_root_is_the_real_package():
    # Guard against the meta-test silently linting an empty directory.
    files = list(SRC_ROOT.rglob("*.py"))
    assert len(files) > 50


def test_every_snapshot_class_is_enumerated_and_complete():
    """R101's enumeration covers exactly the known protocol classes, and
    every one of them captures, restores or waives every attribute."""
    run = build_index(iter_python_files([SRC_ROOT]), LintConfig())
    assert run.errors == []
    coverage = snapshot_coverage(run.summaries)
    assert set(coverage) == EXPECTED_SNAPSHOT_CLASSES
    for name, report in coverage.items():
        assert report.complete, (
            f"{name} missing capture={report.missing_capture} "
            f"restore={report.missing_restore}"
        )
        assert report.stale_waivers == (), name


def test_snapshot_waivers_are_minimal():
    # A waiver for an attribute that snapshot_state actually captures is
    # dead weight; keep the waiver lists honest.
    run = build_index(iter_python_files([SRC_ROOT]), LintConfig())
    coverage = snapshot_coverage(run.summaries)
    for name, report in coverage.items():
        over_waived = set(report.waived) & set(report.captured) & set(
            report.restored
        )
        assert not over_waived, f"{name} waives captured+restored {over_waived}"
