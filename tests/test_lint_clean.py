"""Meta-test: the shipped source tree must satisfy its own linter.

This is the enforcement half of the determinism discipline — CI runs
``python -m repro.lint src/repro`` too, but this test keeps the guarantee
inside the tier-1 suite so a violation fails fast locally.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.lint import format_text, lint_paths

SRC_ROOT = Path(repro.__file__).parent


def test_src_repro_is_lint_clean():
    violations = lint_paths([SRC_ROOT])
    assert violations == [], "\n" + format_text(violations)


def test_src_root_is_the_real_package():
    # Guard against the meta-test silently linting an empty directory.
    files = list(SRC_ROOT.rglob("*.py"))
    assert len(files) > 50
